"""Amortized MSM preprocessing: contexts, the context cache, the CSR
abc front-end, and warm-start service behaviour.

The contract under test is GZKP §4.1's amortization claim: checkpoint
preprocessing runs once per (curve, circuit, query) and every later
proof reuses the table — so a warm prover performs *zero* preprocess
doublings per job, and its telemetry says so.
"""

import random

import pytest

from repro.curves import bn128_g1
from repro.curves.params import CURVES
from repro.errors import MsmError, ServiceError
from repro.ff import OpCounter
from repro.gpusim import V100
from repro.msm import GzkpMsm, MsmContext, MsmContextCache, naive_msm
from repro.msm.context import check_table, expected_table_rows
from repro.service.registry import CIRCUIT_REGISTRY
from repro.service.service import ProofJob, ProvingService
from repro.service.telemetry import Telemetry

L = 254


def _inputs(n=20, seed=11):
    rng = random.Random(seed)
    pts = [bn128_g1.random_point(rng) for _ in range(n)]
    scs = [rng.randrange(bn128_g1.order) for _ in range(n)]
    return scs, pts


def _engine(**kw):
    kw.setdefault("window", 6)
    kw.setdefault("interval", 2)
    return GzkpMsm(bn128_g1, L, V100, **kw)


def _preprocess_spans(span, out=None):
    out = [] if out is None else out
    if span["name"] == "preprocess":
        out.append(span)
    for child in span.get("children", []):
        _preprocess_spans(child, out)
    return out


class TestMsmContext:
    def test_build_and_reuse(self):
        scs, pts = _inputs()
        engine = _engine()
        ctx = engine.build_context(pts, label="q")
        expected = naive_msm(bn128_g1, scs, pts)
        assert engine.compute(scs, pts, context=ctx) == expected
        # reusable across calls with fresh scalars
        scs2, _ = _inputs(seed=99)
        assert engine.compute(scs2, pts, context=ctx) == \
            naive_msm(bn128_g1, scs2, pts)

    def test_context_skips_preprocess_counting(self):
        scs, pts = _inputs()
        engine = _engine()
        cold = OpCounter()
        engine.compute(scs, pts, counter=cold)
        assert cold.by_phase["preprocess"].get("pdbl", 0) > 0
        ctx = engine.build_context(pts)
        warm = OpCounter()
        engine.compute(scs, pts, counter=warm, context=ctx)
        assert "preprocess" not in warm.by_phase
        # the kernel phases are unaffected by amortization
        for phase in ("point-merging", "bucket-reduction"):
            assert warm.by_phase[phase] == cold.by_phase[phase]

    def test_build_context_counts_preprocess_phase(self):
        _, pts = _inputs()
        counter = OpCounter()
        _engine().build_context(pts, counter=counter)
        assert counter.by_phase["preprocess"].get("pdbl", 0) > 0

    def test_build_context_telemetry_span(self):
        _, pts = _inputs()
        telemetry = Telemetry()
        _engine().build_context(pts, telemetry=telemetry, label="a_query")
        spans = [s for s in telemetry.spans if s.name == "preprocess"]
        assert spans and spans[0].meta["label"] == "a_query"
        assert spans[0].total_ops().get("pdbl", 0) > 0

    def test_context_rejected_on_wrong_length(self):
        scs, pts = _inputs()
        engine = _engine()
        ctx = engine.build_context(pts[:-1])
        with pytest.raises(MsmError, match="bound to"):
            engine.compute(scs, pts, context=ctx)

    def test_context_rejected_on_config_mismatch(self):
        scs, pts = _inputs()
        ctx = _engine(window=6).build_context(pts)
        with pytest.raises(MsmError, match="preprocessed under"):
            _engine(window=7).compute(scs, pts, context=ctx)

    def test_group_counter_preserved(self):
        """compute/compute_literal must restore a pre-installed group
        counter instead of resetting it to None."""
        scs, pts = _inputs()
        engine = _engine()
        outer = OpCounter()
        bn128_g1.counter = outer
        try:
            engine.compute(scs, pts)
            assert bn128_g1.counter is outer
            engine.compute(scs, pts, counter=OpCounter())
            assert bn128_g1.counter is outer
            engine.compute_literal(scs, pts, counter=OpCounter())
            assert bn128_g1.counter is outer
        finally:
            bn128_g1.counter = None

    def test_raw_table_validated(self):
        scs, pts = _inputs()
        engine = _engine()
        cfg = engine.configure(len(pts))
        good = engine.preprocess(pts, cfg)
        assert engine.compute(scs, pts, table=good) == \
            naive_msm(bn128_g1, scs, pts)
        with pytest.raises(MsmError, match="row"):
            engine.compute(scs, pts, table=good[:-1])
        with pytest.raises(MsmError, match="point"):
            engine.compute(scs, pts,
                           table=[row[:-1] for row in good])

    def test_check_table_shape_helpers(self):
        _, pts = _inputs()
        engine = _engine()
        cfg = engine.configure(len(pts))
        table = engine.preprocess(pts, cfg)
        assert len(table) == expected_table_rows(cfg)
        check_table(table, cfg, len(pts))

    def test_configure_memoized(self):
        engine = _engine(window=None, interval=None)
        cfg = engine.configure(1 << 10)
        assert engine.configure(1 << 10) is cfg


class TestMsmContextCache:
    def _ctx(self, n=12, seed=1, label=""):
        _, pts = _inputs(n=n, seed=seed)
        return _engine().build_context(pts, label=label)

    def test_lru_eviction_by_entries(self):
        cache = MsmContextCache(max_entries=2)
        a, b, c = (self._ctx(seed=s, label=l)
                   for s, l in ((1, "a"), (2, "b"), (3, "c")))
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a      # refresh "a": now "b" is LRU
        cache.put("c", c)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_byte_budget_eviction(self):
        a, b = self._ctx(seed=1), self._ctx(seed=2)
        cache = MsmContextCache(max_entries=None,
                                max_bytes=a.preprocess_bytes
                                + b.preprocess_bytes)
        cache.put("a", a)
        cache.put("b", b)
        assert len(cache) == 2
        cache.put("c", self._ctx(seed=3))
        assert len(cache) == 2 and "a" not in cache

    def test_oversized_context_rejected(self):
        a = self._ctx()
        cache = MsmContextCache(max_bytes=max(a.preprocess_bytes - 1, 0))
        assert cache.put("a", a) is False
        assert "a" not in cache and cache.stats.rejected == 1

    def test_stats_and_clear(self):
        cache = MsmContextCache()
        a = self._ctx()
        cache.put("a", a)
        assert cache.get("a") is a and cache.get("b") is None
        assert cache.stats.to_dict()["hits"] == 1
        assert cache.stats.to_dict()["misses"] == 1
        cache.clear()
        assert len(cache) == 0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(MsmError):
            MsmContextCache(max_entries=0)
        with pytest.raises(MsmError):
            MsmContextCache(max_bytes=-1)


class TestCsrAbcEvaluations:
    @pytest.mark.parametrize("curve_name", ["ALT-BN128", "BLS12-381"])
    @pytest.mark.parametrize("circuit", sorted(CIRCUIT_REGISTRY))
    def test_matches_scalar_loop(self, curve_name, circuit):
        fr = CURVES[curve_name].fr
        spec = CIRCUIT_REGISTRY[circuit]
        rng = random.Random(f"{curve_name}:{circuit}")
        witness = tuple(rng.randrange(14) for _ in range(spec.n_witness))
        r1cs = spec.build(fr)
        assignment = spec.assign(fr, witness)
        ref = r1cs.abc_evaluations(assignment)
        for backend in ("python", "numpy"):
            got = r1cs.abc_evaluations(assignment, backend=backend)
            assert tuple(map(list, got)) == tuple(map(list, ref))

    def test_csr_cache_invalidated_on_mutation(self):
        fr = CURVES["ALT-BN128"].fr
        spec = CIRCUIT_REGISTRY["cubic"]
        r1cs = spec.build(fr)
        assignment = spec.assign(fr, (3,))
        r1cs.abc_evaluations(assignment, backend="numpy")  # builds CSR
        r1cs.add_constraint({0: 1}, {0: 1}, {0: 1})
        ref = r1cs.abc_evaluations(assignment)
        got = r1cs.abc_evaluations(assignment, backend="numpy")
        assert tuple(map(list, got)) == tuple(map(list, ref))


class TestWarmService:
    def test_warm_job_runs_zero_preprocess_doublings(self):
        """The acceptance contract: on a warm worker, job telemetry has
        a context-cache hit, MSM context-cache hits, and no preprocess
        span (hence zero preprocess doublings) — the per-job hot path
        is fully amortized."""
        with ProvingService(workers=0, parallel_msm=False,
                            warm=[("ALT-BN128", "cubic")]) as svc:
            job1, job2 = svc.prove_batch([
                ProofJob("ALT-BN128", "cubic", (3,)),
                ProofJob("ALT-BN128", "cubic", (7,)),
            ])
            for res in (job1, job2):
                assert res.ok and res.verified
                events = {(e["kind"], e["detail"])
                          for e in res.telemetry["events"]}
                assert ("prover-context-cache", "hit") in events
                assert ("msm-context-cache", "hit") in events
                assert ("msm-context-cache", "miss") not in events
                spans = _preprocess_spans(res.job_span)
                assert spans == []
                for span in _all_spans(res.job_span):
                    assert span["ops"].get("pdbl", 0) == 0 or \
                        span["name"] != "preprocess"

    def test_cold_then_warm_second_job(self):
        with ProvingService(workers=0, parallel_msm=False) as svc:
            cold, warm = svc.prove_batch([
                ProofJob("ALT-BN128", "square", (4,)),
                ProofJob("ALT-BN128", "square", (5,)),
            ])
            cold_events = {(e["kind"], e["detail"])
                           for e in cold.telemetry["events"]}
            warm_events = {(e["kind"], e["detail"])
                           for e in warm.telemetry["events"]}
            assert ("prover-context-cache", "miss") in cold_events
            assert ("prover-context-cache", "hit") in warm_events
            cold_pre = _preprocess_spans(cold.job_span)
            assert cold_pre and any(s["ops"].get("pdbl", 0) > 0
                                    for s in cold_pre)
            assert _preprocess_spans(warm.job_span) == []

    def test_inline_contexts_persist_across_batches(self):
        with ProvingService(workers=0, parallel_msm=False) as svc:
            svc.prove_batch([ProofJob("ALT-BN128", "cubic", (2,))])
            res = svc.prove_batch([ProofJob("ALT-BN128", "cubic", (9,))])[0]
            events = {(e["kind"], e["detail"])
                      for e in res.telemetry["events"]}
            assert ("prover-context-cache", "hit") in events

    def test_warm_pool_worker(self):
        with ProvingService(workers=1, parallel_msm=False, timeout=300,
                            warm=[("ALT-BN128", "square", "python")]) as svc:
            res = svc.prove_batch([
                ProofJob("ALT-BN128", "square", (6,), backend="python")
            ])[0]
            assert res.ok and res.verified
            events = {(e["kind"], e["detail"])
                      for e in res.telemetry["events"]}
            assert ("prover-context-cache", "hit") in events
            assert _preprocess_spans(res.job_span) == []

    def test_invalid_warm_entries_rejected(self):
        with pytest.raises(ServiceError, match="unknown curve"):
            ProvingService(workers=0, warm=[("nope", "cubic")])
        with pytest.raises(ServiceError, match="invalid"):
            ProvingService(workers=0, warm=[("ALT-BN128", "nope")])
        with pytest.raises(ServiceError, match="warm entries"):
            ProvingService(workers=0, warm=[("ALT-BN128",)])


def _all_spans(span):
    yield span
    for child in span.get("children", []):
        yield from _all_spans(child)
