"""Adversarial serialization tests: the decoder must reject every
non-canonical, malformed or cryptographically unsafe encoding.

A proof deserializer is attacker-facing (the proving service accepts
request bytes and emits proof bytes), so round-trip correctness is the
easy half. This suite drives the strict-decode contract on all three
curves: hypothesis round-trip fuzz, truncated buffers, non-canonical
infinity and overflowing coordinates, x-coordinates off the curve, and
— on the MNT4753 surrogate, whose cofactors are nontrivial (8 on G1,
64 on G2) — genuine on-curve points outside the prime-order subgroup,
the classic small-subgroup-confinement vector.

It also pins the MultiGpuMsm estimate regression: caller-supplied
sparse digit stats must actually reach the per-card cost model instead
of being silently replaced by the dense model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import CURVES
from repro.errors import MsmError, ProofError
from repro.gpusim import V100
from repro.msm.multigpu import MultiGpuMsm
from repro.msm.windows import DigitStats
from repro.snark.serialize import (
    compress_g1,
    compress_g2,
    decompress_g1,
    decompress_g2,
    fq2_sqrt,
    fq_sqrt,
)

CURVE_NAMES = ["ALT-BN128", "BLS12-381", "MNT4753"]


@pytest.fixture(params=CURVE_NAMES, ids=CURVE_NAMES)
def curve(request):
    return CURVES[request.param]


# -- round-trip fuzz ---------------------------------------------------------------


@pytest.mark.parametrize("name", CURVE_NAMES)
@settings(max_examples=10, deadline=None)
@given(k=st.integers(min_value=0, max_value=2**753))
def test_g1_roundtrip_fuzz(name, k):
    cur = CURVES[name]
    point = cur.g1.scalar_mul(k % cur.fr.modulus, cur.g1.generator)
    blob = compress_g1(cur.g1, point)
    assert decompress_g1(cur.g1, blob) == point


@pytest.mark.parametrize("name", CURVE_NAMES)
@settings(max_examples=5, deadline=None)
@given(k=st.integers(min_value=0, max_value=2**753))
def test_g2_roundtrip_fuzz(name, k):
    cur = CURVES[name]
    point = cur.g2.scalar_mul(k % cur.fr.modulus, cur.g2.generator)
    blob = compress_g2(cur.g2, point)
    assert decompress_g2(cur.g2, blob) == point


# -- truncation --------------------------------------------------------------------


def test_truncated_buffers_rejected(curve):
    g1_blob = compress_g1(curve.g1, curve.g1.generator)
    g2_blob = compress_g2(curve.g2, curve.g2.generator)
    for cut in (0, 1, len(g1_blob) // 2, len(g1_blob) - 1):
        with pytest.raises(ProofError):
            decompress_g1(curve.g1, g1_blob[:cut])
    for cut in (0, 1, len(g2_blob) // 2, len(g2_blob) - 1):
        with pytest.raises(ProofError):
            decompress_g2(curve.g2, g2_blob[:cut])
    # oversize is just as malformed as undersize
    with pytest.raises(ProofError):
        decompress_g1(curve.g1, g1_blob + b"\x00")
    with pytest.raises(ProofError):
        decompress_g2(curve.g2, g2_blob + b"\x00")


# -- non-canonical encodings -------------------------------------------------------


def test_infinity_with_nonzero_payload_rejected(curve):
    n = len(compress_g1(curve.g1, None)) - 1
    clean = compress_g1(curve.g1, None)
    assert decompress_g1(curve.g1, clean) is None
    dirty = bytes([clean[0]]) + b"\x00" * (n - 1) + b"\x01"
    with pytest.raises(ProofError, match="non-canonical"):
        decompress_g1(curve.g1, dirty)
    # infinity flag combined with the sign bit is equally non-canonical
    with pytest.raises(ProofError, match="non-canonical"):
        decompress_g1(curve.g1, bytes([clean[0] | 0x01]) + clean[1:])

    clean2 = compress_g2(curve.g2, None)
    assert decompress_g2(curve.g2, clean2) is None
    dirty2 = bytes([clean2[0]]) + b"\x01" + clean2[2:]
    with pytest.raises(ProofError, match="non-canonical"):
        decompress_g2(curve.g2, dirty2)


def test_unknown_flag_bits_rejected(curve):
    blob = compress_g1(curve.g1, curve.g1.generator)
    with pytest.raises(ProofError, match="flag"):
        decompress_g1(curve.g1, bytes([blob[0] | 0x80]) + blob[1:])
    blob2 = compress_g2(curve.g2, curve.g2.generator)
    with pytest.raises(ProofError, match="flag"):
        decompress_g2(curve.g2, bytes([blob2[0] | 0x20]) + blob2[1:])


def test_overflowing_coordinate_rejected(curve):
    """x + p encodes the same curve point in a second way; the byte
    width of every curve here leaves room for it, so the decoder must
    refuse any coordinate >= p."""
    p = curve.fq.modulus
    blob = compress_g1(curve.g1, curve.g1.generator)
    n = len(blob) - 1
    x = int.from_bytes(blob[1:], "big")
    assert x + p < 1 << (8 * n), "test assumes x + p fits the encoding"
    overflowed = bytes([blob[0]]) + (x + p).to_bytes(n, "big")
    with pytest.raises(ProofError, match="non-canonical"):
        decompress_g1(curve.g1, overflowed)

    blob2 = compress_g2(curve.g2, curve.g2.generator)
    c0 = int.from_bytes(blob2[1:n + 1], "big")
    overflowed2 = (bytes([blob2[0]]) + (c0 + p).to_bytes(n, "big")
                   + blob2[n + 1:])
    with pytest.raises(ProofError, match="non-canonical"):
        decompress_g2(curve.g2, overflowed2)


def test_off_curve_x_rejected(curve):
    """An x whose curve polynomial value is a non-residue names no
    point at all."""
    field = curve.fq
    p = field.modulus
    n = len(compress_g1(curve.g1, curve.g1.generator)) - 1
    for x in range(1, 200):
        rhs = (pow(x, 3, p) + curve.g1.a * x + curve.g1.b) % p
        if fq_sqrt(p, rhs) is None:
            with pytest.raises(ProofError, match="not on the curve"):
                decompress_g1(curve.g1, bytes([0]) + x.to_bytes(n, "big"))
            return
    pytest.fail("no off-curve x found in [1, 200)")


# -- subgroup membership -----------------------------------------------------------


def _find_non_subgroup_g1(group):
    """Smallest-x on-curve point outside the prime-order subgroup —
    exists because the MNT4753 surrogate's G1 cofactor is 8."""
    p = group.coord_field.modulus
    for x in range(1, 500):
        rhs = (pow(x, 3, p) + group.a * x + group.b) % p
        y = fq_sqrt(p, rhs)
        if y is None:
            continue
        point = (x, y)
        if not group.in_subgroup(point):
            return point
    return None


def test_mnt4753_g1_wrong_subgroup_rejected():
    group = CURVES["MNT4753"].g1
    rogue = _find_non_subgroup_g1(group)
    assert rogue is not None, "cofactor 8: rogue points must exist"
    assert group.is_on_curve(rogue)
    blob = compress_g1(group, rogue)
    with pytest.raises(ProofError, match="subgroup"):
        decompress_g1(group, blob)
    # the escape hatch still decodes it (e.g. for cofactor clearing)
    assert decompress_g1(group, blob, check_subgroup=False) == rogue


def test_mnt4753_g2_wrong_subgroup_rejected():
    curve = CURVES["MNT4753"]
    group = curve.g2
    # The G2 generator is derived by clearing a cofactor of 8, but the
    # full curve order over Fq2 is 64 * 8 * r (cofactor 512): doubling
    # can stay outside the subgroup, so search small multiples of a
    # pre-clearing point instead: any on-curve point not killed by r.
    field = group.coord_field
    rogue = None
    for c1 in range(1, 60):
        x = field.element([0, c1])
        rhs = x * x * x + group.a * x + group.b
        y = fq2_sqrt(field, rhs)
        if y is None:
            continue
        point = (x, y)
        if group.is_on_curve(point) and not group.in_subgroup(point):
            rogue = point
            break
    assert rogue is not None, "nontrivial G2 cofactor: rogue points exist"
    blob = compress_g2(group, rogue)
    with pytest.raises(ProofError, match="subgroup"):
        decompress_g2(group, blob)
    assert decompress_g2(group, blob, check_subgroup=False) == rogue


def test_in_subgroup_is_not_vacuous():
    """Regression: ``in_subgroup`` used to call ``scalar_mul``, which
    reduces k mod the subgroup order — order * P was computed as 0 * P,
    so *every* point passed. The unreduced ladder must be used."""
    group = CURVES["MNT4753"].g1
    rogue = _find_non_subgroup_g1(group)
    assert rogue is not None
    assert group.scalar_mul(group.order, rogue) is None      # the trap
    assert group.scalar_mul_unchecked(group.order, rogue) is not None
    assert group.in_subgroup(group.generator)
    assert not group.in_subgroup(rogue)


# -- MultiGpuMsm stats regression --------------------------------------------------


class TestMultiGpuStats:
    BITS = 254

    def _engine(self, n_gpus=4):
        group = CURVES["ALT-BN128"].g1
        return MultiGpuMsm(group, self.BITS, V100, n_gpus=n_gpus)

    def test_sparse_stats_change_the_estimate(self):
        """Regression: estimate_seconds silently discarded caller stats
        (sparse == dense). Sparse vectors have far fewer non-zero
        digits, so they must price strictly below the dense model."""
        engine = self._engine()
        n = 1 << 20
        window = engine._engine.configure(n // engine.n_gpus).window
        sparse = DigitStats.sparse_model(n, self.BITS, window,
                                         zero_fraction=0.6,
                                         one_fraction=0.3)
        dense = engine.estimate_seconds(n)
        sparse_est = engine.estimate_seconds(n, sparse)
        assert sparse_est < dense

    def test_stats_scaled_to_per_card_slice(self):
        """The per-card slice keeps the full vector's sparsity
        fractions at per-card n."""
        n = 1 << 18
        full = DigitStats.sparse_model(n, self.BITS, 12,
                                       zero_fraction=0.5,
                                       one_fraction=0.25)
        per_card = full.scaled(n // 4)
        assert per_card.n == n // 4
        assert per_card.windows == full.windows
        assert per_card.nonzero_fraction == pytest.approx(
            full.nonzero_fraction, rel=1e-3)
        assert per_card.bucket_imbalance == pytest.approx(
            full.bucket_imbalance, rel=1e-2)

    def test_mismatched_window_stats_still_price(self):
        """Stats enumerated at a window the per-card profiler would not
        pick must still be priced (at their own window), not raise."""
        engine = self._engine()
        n = 1 << 16
        per_card_window = engine._engine.configure(
            n // engine.n_gpus).window
        other_window = 7 if per_card_window != 7 else 9
        stats = DigitStats.sparse_model(n, self.BITS, other_window,
                                        zero_fraction=0.4,
                                        one_fraction=0.2)
        est = engine.estimate_seconds(n, stats)
        assert est > 0

    def test_impossible_window_count_raises(self):
        engine = self._engine()
        bogus = DigitStats.dense_model(1 << 16, self.BITS, 1)
        object.__setattr__(bogus, "windows", self.BITS + 17)
        with pytest.raises(MsmError):
            engine.estimate_seconds(1 << 16, bogus)

    def test_single_gpu_matches_underlying_engine(self):
        engine = self._engine(n_gpus=1)
        n = 1 << 16
        stats = DigitStats.dense_model(
            n, self.BITS, engine._engine.configure(n).window)
        assert engine.estimate_seconds(n, stats) == pytest.approx(
            engine._engine.estimate_seconds(n, stats))

    def test_reduce_overhead_constant_is_used(self):
        from repro.gpusim import cost

        engine2 = self._engine(n_gpus=2)
        engine4 = self._engine(n_gpus=4)
        n = 1 << 20
        # overhead term grows linearly in the card count
        assert cost.MULTI_GPU_REDUCE_OVERHEAD > 0
        est2 = engine2.estimate_seconds(n)
        est4 = engine4.estimate_seconds(n)
        assert est2 > 0 and est4 > 0
