"""End-to-end integration: the GZKP engines wired into Groth16, whole
workload circuits proven and verified, on all three curves."""

import random

import pytest

from repro.circuits import merkle_tree_circuit, workload
from repro.curves import CURVES
from repro.snark import Groth16Prover, Groth16Verifier, setup
from repro.snark.gzkp_prover import make_gzkp_prover
from repro.snark.serialize import deserialize_proof, serialize_proof


class TestGzkpEnginesInGroth16:
    """The paper's engines (not the reference ones) produce valid
    proofs — closing the loop between repro.ntt/repro.msm and
    repro.snark."""

    @pytest.fixture(scope="class")
    def instance(self):
        curve = CURVES["ALT-BN128"]
        r1cs, assignment = merkle_tree_circuit(curve.fr, depth=2, seed=31)
        keys = setup(r1cs, curve, random.Random(31))
        return curve, r1cs, assignment, keys

    def test_gzkp_prover_proof_verifies(self, instance):
        curve, r1cs, assignment, keys = instance
        prover = make_gzkp_prover(r1cs, keys.proving_key, curve,
                                  msm_window=6, msm_interval=3)
        proof = prover.prove(assignment, random.Random(1))
        verifier = Groth16Verifier(keys.verifying_key, curve)
        assert verifier.verify(proof, assignment[1:2])

    def test_gzkp_and_reference_provers_agree(self, instance):
        """With identical masks, the GZKP-engine prover and the
        reference prover emit the *same group elements* — engine choice
        cannot change the proof, only how fast it is computed."""
        curve, r1cs, assignment, keys = instance
        reference = Groth16Prover(r1cs, keys.proving_key, curve)
        gzkp = make_gzkp_prover(r1cs, keys.proving_key, curve,
                                msm_window=5, msm_interval=2)
        r_mask, s_mask = 12345, 67890
        p_ref = reference._prove_with_masks(assignment, r_mask, s_mask)
        p_gz = gzkp._prove_with_masks(assignment, r_mask, s_mask)
        assert p_ref.a == p_gz.a
        assert p_ref.b == p_gz.b
        assert p_ref.c == p_gz.c

    def test_h_computation_identical(self, instance):
        curve, r1cs, assignment, keys = instance
        reference = Groth16Prover(r1cs, keys.proving_key, curve)
        gzkp = make_gzkp_prover(r1cs, keys.proving_key, curve,
                                msm_window=5, msm_interval=2)
        assert reference.compute_h(assignment) == gzkp.compute_h(assignment)

    def test_backend_choice_preserves_proof_and_counts(self, instance):
        """The compute backend (scalar python vs vectorized numpy)
        changes neither the proof bits nor the curve-op totals of an
        end-to-end Groth16 run."""
        from repro.backend import available_backends
        from repro.ff.opcount import OpCounter

        if "numpy" not in available_backends():
            pytest.skip("numpy backend unavailable")
        curve, r1cs, assignment, keys = instance
        proofs, totals = [], []
        for backend in ("python", "numpy"):
            gzkp = make_gzkp_prover(r1cs, keys.proving_key, curve,
                                    msm_window=5, msm_interval=2,
                                    backend=backend)
            c_g1, c_g2 = OpCounter(), OpCounter()
            curve.g1.counter = c_g1
            curve.g2.counter = c_g2
            try:
                proofs.append(gzkp._prove_with_masks(assignment, 111, 222))
            finally:
                curve.g1.counter = None
                curve.g2.counter = None
            totals.append((dict(c_g1._totals), dict(c_g2._totals)))
        assert proofs[0] == proofs[1]
        assert totals[0] == totals[1]


class TestWorkloadEndToEnd:
    """Small builds of the paper's workloads, proven and verified."""

    @pytest.mark.parametrize("name", ["AES", "Merkle-Tree", "Sapling_Output"])
    def test_workload_proof_roundtrip(self, name):
        curve = CURVES["ALT-BN128"]  # fastest curve for the battery
        w = workload(name)
        r1cs, assignment = w.build_small(curve.fr)
        keys = setup(r1cs, curve, random.Random(hash(name) & 0xFFFF))
        prover = Groth16Prover(r1cs, keys.proving_key, curve)
        proof = prover.prove(assignment, random.Random(2))
        # Through the wire and back.
        restored = deserialize_proof(serialize_proof(proof, curve), curve)
        verifier = Groth16Verifier(keys.verifying_key, curve)
        publics = assignment[1:1 + r1cs.n_public]
        assert verifier.verify(restored, publics)


@pytest.mark.slow
class TestAllCurvesEndToEnd:
    """Full prove+verify with real pairings on every supported curve."""

    @pytest.mark.parametrize("curve_name",
                             ["ALT-BN128", "BLS12-381", "MNT4753"])
    def test_prove_verify(self, curve_name):
        curve = CURVES[curve_name]
        r1cs, assignment = merkle_tree_circuit(curve.fr, depth=2,
                                               seed=41)
        keys = setup(r1cs, curve, random.Random(41))
        prover = Groth16Prover(r1cs, keys.proving_key, curve)
        proof = prover.prove(assignment, random.Random(42))
        verifier = Groth16Verifier(keys.verifying_key, curve)
        assert verifier.verify(proof, assignment[1:2])
        assert not verifier.verify(proof, [(assignment[1] + 1)
                                           % curve.fr.modulus])
