"""Unit and property tests for the elliptic-curve group law."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CurveError
from repro.ff import OpCounter
from repro.curves import (
    CURVES,
    bls12_381_g1,
    bls12_381_g2,
    bn128_g1,
    bn128_g2,
    mnt4753_g1,
    mnt4753_g2_ready,
)

G1_GROUPS = [bn128_g1, bls12_381_g1, mnt4753_g1]


@pytest.fixture(params=G1_GROUPS, ids=lambda g: g.name)
def group(request):
    return request.param


@pytest.fixture(scope="module")
def mnt_g2():
    return mnt4753_g2_ready()


class TestGenerators:
    def test_g1_generators_valid(self, group):
        g = group.generator
        assert group.is_on_curve(g)
        assert group.scalar_mul(group.order, g) is None

    @pytest.mark.parametrize("g2", [bn128_g2, bls12_381_g2], ids=lambda g: g.name)
    def test_g2_generators_valid(self, g2):
        g = g2.generator
        assert g2.is_on_curve(g)
        assert g2.scalar_mul(g2.order, g) is None

    def test_mnt_g2_generator_valid(self, mnt_g2):
        g = mnt_g2.generator
        assert mnt_g2.is_on_curve(g)
        assert mnt_g2.scalar_mul(mnt_g2.order, g) is None

    def test_mnt_g2_disjoint_from_g1(self, mnt_g2):
        """The surrogate G2 generator must not be a base-field point
        (it lives on the twist component, independent of G1)."""
        x, y = mnt_g2.generator
        assert y.coeffs[1] != 0 or x.coeffs[1] != 0


class TestGroupLaw:
    def test_identity(self, group):
        g = group.generator
        assert group.add(g, None) == g
        assert group.add(None, g) == g
        assert group.add(None, None) is None

    def test_inverse(self, group):
        g = group.generator
        assert group.add(g, group.neg(g)) is None

    def test_commutativity(self, group):
        rng = random.Random(0)
        p = group.random_point(rng)
        q = group.random_point(rng)
        assert group.add(p, q) == group.add(q, p)

    def test_associativity(self, group):
        rng = random.Random(1)
        p = group.random_point(rng)
        q = group.random_point(rng)
        r = group.random_point(rng)
        assert group.add(group.add(p, q), r) == group.add(p, group.add(q, r))

    def test_double_equals_add_self(self, group):
        g = group.generator
        assert group.double(g) == group.add(g, g)

    def test_points_stay_on_curve(self, group):
        rng = random.Random(2)
        p = group.random_point(rng)
        q = group.random_point(rng)
        assert group.is_on_curve(group.add(p, q))
        assert group.is_on_curve(group.double(p))

    def test_off_curve_rejected_as_generator(self, group):
        with pytest.raises(CurveError):
            group.set_generator((1234, 5678))


class TestJacobian:
    def test_roundtrip(self, group):
        rng = random.Random(3)
        p = group.random_point(rng)
        assert group.from_jacobian(group.to_jacobian(p)) == p
        assert group.from_jacobian(group.to_jacobian(None)) is None

    def test_jadd_matches_affine(self, group):
        rng = random.Random(4)
        p = group.random_point(rng)
        q = group.random_point(rng)
        jp, jq = group.to_jacobian(p), group.to_jacobian(q)
        assert group.from_jacobian(group.jadd(jp, jq)) == group.add(p, q)

    def test_jdouble_matches_affine(self, group):
        rng = random.Random(5)
        p = group.random_point(rng)
        assert group.from_jacobian(group.jdouble(group.to_jacobian(p))) == (
            group.double(p)
        )

    def test_jmixed_add_matches_affine(self, group):
        rng = random.Random(6)
        p = group.random_point(rng)
        q = group.random_point(rng)
        assert group.from_jacobian(
            group.jmixed_add(group.to_jacobian(p), q)
        ) == group.add(p, q)

    def test_jadd_same_point_falls_back_to_double(self, group):
        g = group.generator
        jg = group.to_jacobian(g)
        assert group.from_jacobian(group.jadd(jg, jg)) == group.double(g)

    def test_jadd_inverse_gives_infinity(self, group):
        g = group.generator
        result = group.jadd(group.to_jacobian(g), group.to_jacobian(group.neg(g)))
        assert group.jis_infinity(result)

    def test_batch_normalize(self, group):
        rng = random.Random(7)
        points = [group.random_point(rng) for _ in range(5)]
        jacs = [group.to_jacobian(p) for p in points]
        # Mix in a doubled (non-trivial Z) point and an infinity.
        jacs[2] = group.jdouble(jacs[2])
        points[2] = group.double(points[2])
        jacs.append((group.ops.one, group.ops.one, group.ops.zero))
        points.append(None)
        assert group.batch_normalize(jacs) == points


class TestScalarMul:
    def test_small_scalars(self, group):
        g = group.generator
        acc = None
        for k in range(1, 8):
            acc = group.add(acc, g)
            assert group.scalar_mul(k, g) == acc

    def test_scalar_mod_order(self, group):
        g = group.generator
        assert group.scalar_mul(group.order + 5, g) == group.scalar_mul(5, g)
        assert group.scalar_mul(group.order, g) is None
        assert group.scalar_mul(0, g) is None

    def test_distributivity(self, group):
        rng = random.Random(8)
        a = rng.randrange(1, group.order)
        b = rng.randrange(1, group.order)
        g = group.generator
        lhs = group.scalar_mul((a + b) % group.order, g)
        rhs = group.add(group.scalar_mul(a, g), group.scalar_mul(b, g))
        assert lhs == rhs

    def test_wnaf_matches_double_and_add(self, group):
        rng = random.Random(9)
        g = group.generator
        for width in (2, 3, 4, 5):
            k = rng.randrange(1, group.order)
            assert group.wnaf_mul(k, g, width=width) == group.scalar_mul(k, g)

    def test_wnaf_bad_width(self, group):
        with pytest.raises(CurveError):
            group.wnaf_mul(3, group.generator, width=1)

    def test_infinity_input(self, group):
        assert group.scalar_mul(5, None) is None


class TestInstrumentation:
    def test_padd_counted(self):
        counter = OpCounter()
        bn128_g1.counter = counter
        try:
            g = bn128_g1.generator
            bn128_g1.add(g, bn128_g1.double(g))
        finally:
            bn128_g1.counter = None
        # one affine double + one affine add, each one 'padd';
        # double() also routes through add().
        assert counter.total("padd") == 2

    def test_scalar_mul_padd_count_scales_with_bits(self):
        counter = OpCounter()
        bn128_g1.counter = counter
        try:
            bn128_g1.scalar_mul((1 << 64) - 1, bn128_g1.generator)
        finally:
            bn128_g1.counter = None
        # 63 doublings + 63 true additions (the first addition onto the
        # infinity accumulator is a copy, not a PADD), all counted.
        assert counter.total("padd") == 63 + 63


@settings(max_examples=15, deadline=None)
@given(k=st.integers(min_value=1, max_value=1 << 130))
def test_scalar_mul_homomorphism_property(k):
    """(k mod r) * G computed two ways agree on BN254 G1."""
    g = bn128_g1.generator
    half = k // 2
    lhs = bn128_g1.scalar_mul(k, g)
    rhs = bn128_g1.add(
        bn128_g1.scalar_mul(half, g), bn128_g1.scalar_mul(k - half, g)
    )
    assert lhs == rhs


def test_curve_registry_complete():
    assert set(CURVES) == {"ALT-BN128", "BLS12-381", "MNT4753"}
    for pair in CURVES.values():
        assert pair.g1.order == pair.fr.modulus
