"""Tests for the circuit builder DSL and the workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    CircuitBuilder,
    ZCASH_WORKLOADS,
    ZKSNARK_WORKLOADS,
    aes_like_circuit,
    auction_circuit,
    merkle_tree_circuit,
    rsa_enc_circuit,
    sha256_like_circuit,
    workload,
)
from repro.errors import CircuitError
from repro.ff import ALT_BN128_R

F = ALT_BN128_R


class TestBuilderGates:
    def test_mul(self):
        b = CircuitBuilder(F)
        x, y = b.witness(6), b.witness(7)
        out = b.mul(x, y)
        assert b.value(out) == 42
        assert b.build().is_satisfied(b.assignment)

    def test_add_and_linear(self):
        b = CircuitBuilder(F)
        x, y = b.witness(10), b.witness(20)
        s = b.add(x, y)
        lc = b.linear({x: 3, y: -1})
        assert b.value(s) == 30
        assert b.value(lc) == 10
        assert b.build().is_satisfied(b.assignment)

    def test_boolean_constraint(self):
        b = CircuitBuilder(F)
        b.boolean_witness(0)
        b.boolean_witness(1)
        assert b.build().is_satisfied(b.assignment)
        with pytest.raises(CircuitError):
            b.boolean_witness(2)

    def test_boolean_violation_detected(self):
        b = CircuitBuilder(F)
        v = b.witness(2)
        b.assert_boolean(v)
        assert not b.r1cs.is_satisfied(b.assignment)

    def test_bit_decomposition(self):
        b = CircuitBuilder(F)
        v = b.witness(0b1011)
        bits = b.decompose_bits(v, 4)
        assert [b.value(bit) for bit in bits] == [1, 1, 0, 1]
        assert b.build().is_satisfied(b.assignment)

    def test_bit_decomposition_overflow_rejected(self):
        b = CircuitBuilder(F)
        v = b.witness(16)
        with pytest.raises(CircuitError):
            b.decompose_bits(v, 4)

    def test_select(self):
        b = CircuitBuilder(F)
        t, f_val = b.witness(100), b.witness(200)
        flag1 = b.boolean_witness(1)
        flag0 = b.boolean_witness(0)
        assert b.value(b.select(flag1, t, f_val)) == 100
        assert b.value(b.select(flag0, t, f_val)) == 200
        assert b.build().is_satisfied(b.assignment)

    def test_xor_and(self):
        b = CircuitBuilder(F)
        bits = {v: b.boolean_witness(v) for v in (0, 1)}
        for x in (0, 1):
            for y in (0, 1):
                assert b.value(b.xor(bits[x], bits[y])) == x ^ y
                assert b.value(b.and_gate(bits[x], bits[y])) == x & y
        assert b.build().is_satisfied(b.assignment)

    def test_pow_const(self):
        b = CircuitBuilder(F)
        x = b.witness(3)
        assert b.value(b.pow_const(x, 5)) == 243
        assert b.build().is_satisfied(b.assignment)
        with pytest.raises(CircuitError):
            b.pow_const(x, 0)

    def test_unbound_public_rejected(self):
        b = CircuitBuilder(F, n_public=1)
        b.witness(5)
        with pytest.raises(CircuitError):
            b.build()

    def test_excess_public_rejected(self):
        b = CircuitBuilder(F, n_public=1)
        b.set_public(5)
        with pytest.raises(CircuitError):
            b.set_public(6)

    @settings(max_examples=30, deadline=None)
    @given(x=st.integers(min_value=0, max_value=2**32),
           y=st.integers(min_value=0, max_value=2**32))
    def test_mul_gate_property(self, x, y):
        b = CircuitBuilder(F)
        vx, vy = b.witness(x), b.witness(y)
        out = b.mul(vx, vy)
        assert b.value(out) == x * y % F.modulus
        assert b.r1cs.is_satisfied(b.assignment)


GENERATORS = {
    "aes": lambda: aes_like_circuit(F, rounds=2),
    "sha": lambda: sha256_like_circuit(F, rounds=3),
    "rsa": lambda: rsa_enc_circuit(F, exponent_bits=4),
    "merkle": lambda: merkle_tree_circuit(F, depth=3),
    "auction": lambda: auction_circuit(F, n_bidders=4),
}


@pytest.fixture(params=list(GENERATORS), ids=list(GENERATORS))
def generated(request):
    return GENERATORS[request.param]()


class TestWorkloadCircuits:
    def test_satisfiable(self, generated):
        r1cs, assignment = generated
        assert r1cs.is_satisfied(assignment)

    def test_tampered_witness_unsatisfies(self, generated):
        r1cs, assignment = generated
        bad = list(assignment)
        # Flip a mid-circuit witness value.
        bad[len(bad) // 2] = (bad[len(bad) // 2] + 1) % F.modulus
        assert not r1cs.is_satisfied(bad)

    def test_nontrivial_size(self, generated):
        r1cs, _ = generated
        assert len(r1cs.constraints) >= 10

    def test_has_sparse_assignment(self, generated):
        """All workload circuits produce 0/1-heavy assignments (§4.2)."""
        _, assignment = generated
        zeros_ones = sum(1 for v in assignment if v in (0, 1))
        assert zeros_ones / len(assignment) > 0.10


class TestAuctionSemantics:
    def test_winner_is_max(self):
        r1cs, assignment = auction_circuit(F, n_bidders=5, seed=3)
        assert r1cs.is_satisfied(assignment)

    def test_wrong_winner_rejected(self):
        """Raising the public winner above the true max must fail the
        'winner equals one of the bids' constraint chain."""
        r1cs, assignment = auction_circuit(F, n_bidders=4, seed=4)
        bad = list(assignment)
        bad[1] = (bad[1] + 1) % F.modulus  # public winner
        assert not r1cs.is_satisfied(bad)


class TestScaling:
    def test_merkle_constraints_scale_with_depth(self):
        shallow, _ = merkle_tree_circuit(F, depth=2)
        deep, _ = merkle_tree_circuit(F, depth=6)
        assert len(deep.constraints) > 2.5 * len(shallow.constraints)

    def test_auction_constraints_scale_with_bidders(self):
        small, _ = auction_circuit(F, n_bidders=2)
        large, _ = auction_circuit(F, n_bidders=8)
        assert len(large.constraints) > 2 * len(small.constraints)


class TestRegistry:
    def test_paper_vector_sizes(self):
        """Table 2 / Table 3 vector sizes, exactly."""
        assert ZKSNARK_WORKLOADS["AES"].vector_size == 16383
        assert ZKSNARK_WORKLOADS["Auction"].vector_size == 557055
        assert ZCASH_WORKLOADS["Sprout"].vector_size == 2097151

    def test_domains_are_powers_of_two(self):
        for w in {**ZKSNARK_WORKLOADS, **ZCASH_WORKLOADS}.values():
            d = w.domain_size
            assert d & (d - 1) == 0
            assert d >= w.vector_size

    def test_all_small_builds_satisfiable(self):
        for w in {**ZKSNARK_WORKLOADS, **ZCASH_WORKLOADS}.values():
            r1cs, assignment = w.build_small(F)
            assert r1cs.is_satisfied(assignment), w.name

    def test_lookup(self):
        assert workload("AES").curve_name == "MNT4753"
        assert workload("Sprout").curve_name == "BLS12-381"
        with pytest.raises(KeyError):
            workload("nonexistent")

    def test_sparsity_profiles_sane(self):
        for w in {**ZKSNARK_WORKLOADS, **ZCASH_WORKLOADS}.values():
            assert 0 < w.zero_fraction < 1
            assert 0 < w.one_fraction < 1
            assert w.zero_fraction + w.one_fraction > 0.8  # "highly sparse"
            assert w.zero_fraction + w.one_fraction < 1.0
