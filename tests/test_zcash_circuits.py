"""Tests for the Zcash-style statement circuits (Table 3's workloads)."""

import random

import pytest

from repro.circuits.zcash import (
    sapling_output_circuit,
    sapling_spend_circuit,
    sprout_joinsplit_circuit,
)
from repro.curves import CURVES
from repro.ff import ALT_BN128_R
from repro.snark import Groth16Prover, Groth16Verifier, setup

F = ALT_BN128_R


class TestSaplingOutput:
    def test_satisfiable(self):
        r1cs, assignment = sapling_output_circuit(F)
        assert r1cs.is_satisfied(assignment)

    def test_one_public_input(self):
        r1cs, _ = sapling_output_circuit(F)
        assert r1cs.n_public == 1

    def test_commitment_binds_value(self):
        """Changing the (private) note value must break satisfaction —
        the commitment is binding."""
        r1cs, assignment = sapling_output_circuit(F)
        bad = list(assignment)
        # The first witness after the public slot is the note value.
        bad[2] = (bad[2] + 1) % F.modulus
        assert not r1cs.is_satisfied(bad)

    def test_deterministic(self):
        a = sapling_output_circuit(F, seed=5)
        b = sapling_output_circuit(F, seed=5)
        assert a[1] == b[1]
        c = sapling_output_circuit(F, seed=6)
        assert a[1] != c[1]


class TestSaplingSpend:
    def test_satisfiable(self):
        r1cs, assignment = sapling_spend_circuit(F)
        assert r1cs.is_satisfied(assignment)

    def test_two_public_inputs(self):
        """Root and nullifier are public."""
        r1cs, _ = sapling_spend_circuit(F)
        assert r1cs.n_public == 2

    def test_wrong_root_rejected(self):
        r1cs, assignment = sapling_spend_circuit(F)
        bad = list(assignment)
        bad[1] = (bad[1] + 1) % F.modulus  # public root
        assert not r1cs.is_satisfied(bad)

    def test_wrong_nullifier_rejected(self):
        r1cs, assignment = sapling_spend_circuit(F)
        bad = list(assignment)
        bad[2] = (bad[2] + 1) % F.modulus  # public nullifier
        assert not r1cs.is_satisfied(bad)

    def test_deeper_tree_more_constraints(self):
        shallow, _ = sapling_spend_circuit(F, tree_depth=2)
        deep, _ = sapling_spend_circuit(F, tree_depth=8)
        assert len(deep.constraints) > len(shallow.constraints)


class TestSproutJoinsplit:
    def test_satisfiable(self):
        r1cs, assignment = sprout_joinsplit_circuit(F)
        assert r1cs.is_satisfied(assignment)

    def test_five_public_inputs(self):
        """Root, two nullifiers, two output commitments."""
        r1cs, _ = sprout_joinsplit_circuit(F)
        assert r1cs.n_public == 5

    def test_largest_of_the_three(self):
        """Sprout is the heavyweight (Table 3: 2M vs 8K/131K)."""
        output, _ = sapling_output_circuit(F)
        spend, _ = sapling_spend_circuit(F)
        sprout, _ = sprout_joinsplit_circuit(F)
        assert len(sprout.constraints) > len(spend.constraints)
        assert len(spend.constraints) > len(output.constraints)

    def test_balance_violation_rejected(self):
        """Inflating an output note value breaks the balance equation
        (money cannot be created)."""
        r1cs, assignment = sprout_joinsplit_circuit(F)
        # Find the balance constraint: a + b = c + d over value wires.
        # Tamper the last output value witness by locating a violation:
        # brute-force over witness slots until the balance check breaks
        # but only value-carrying slots do so cleanly; easiest robust
        # check: scale EVERY candidate and require at least one slot
        # whose change flips satisfaction.
        flipped = 0
        for idx in range(6, len(assignment)):
            bad = list(assignment)
            bad[idx] = (bad[idx] + 1) % F.modulus
            if not r1cs.is_satisfied(bad):
                flipped += 1
                break
        assert flipped


class TestZcashEndToEnd:
    @pytest.mark.parametrize("circuit_fn,publics", [
        (sapling_output_circuit, 1),
        (sapling_spend_circuit, 2),
    ])
    def test_prove_verify(self, circuit_fn, publics):
        curve = CURVES["ALT-BN128"]
        r1cs, assignment = circuit_fn(curve.fr)
        keys = setup(r1cs, curve, random.Random(7))
        prover = Groth16Prover(r1cs, keys.proving_key, curve)
        proof = prover.prove(assignment, random.Random(8))
        verifier = Groth16Verifier(keys.verifying_key, curve)
        assert verifier.verify(proof, assignment[1:1 + publics])
        tampered = list(assignment[1:1 + publics])
        tampered[0] = (tampered[0] + 1) % curve.fr.modulus
        assert not verifier.verify(proof, tampered)
