"""Unit tests for repro.ff.primefield."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.ff import ALT_BN128_R, BLS12_381_R, MNT4753_R, FieldElement, PrimeField

FIELDS = [ALT_BN128_R, BLS12_381_R, MNT4753_R, PrimeField(97, name="F_97")]


@pytest.fixture(params=FIELDS, ids=lambda f: f.name)
def field(request):
    return request.param


class TestStructure:
    def test_bits_match_paper(self):
        assert ALT_BN128_R.bits == 254
        assert BLS12_381_R.bits == 255
        # The surrogate scalar field is 750-bit; the *base* field is 753.
        assert MNT4753_R.bits == 750

    def test_limb_counts(self):
        from repro.ff import ALT_BN128_Q, BLS12_381_Q, MNT4753_Q

        assert ALT_BN128_Q.limbs64 == 4  # 256-bit class
        assert BLS12_381_Q.limbs64 == 6  # 381-bit class
        assert MNT4753_Q.limbs64 == 12  # 753-bit class
        # Paper §4.3: a 753-bit integer becomes 15 base-2^52 limbs.
        assert MNT4753_Q.limbs52 == 15

    def test_two_adicity_supports_paper_scales(self):
        # Tables 5-8 go up to 2^26; every field must support that.
        assert ALT_BN128_R.two_adicity >= 26
        assert BLS12_381_R.two_adicity >= 26
        assert MNT4753_R.two_adicity >= 26

    def test_bad_modulus_rejected(self):
        with pytest.raises(FieldError):
            PrimeField(1)


class TestArithmetic:
    def test_add_sub_roundtrip(self, field):
        rng = random.Random(1)
        for _ in range(50):
            a, b = rng.randrange(field.modulus), rng.randrange(field.modulus)
            assert field.sub(field.add(a, b), b) == a

    def test_mul_matches_int(self, field):
        rng = random.Random(2)
        for _ in range(50):
            a, b = rng.randrange(field.modulus), rng.randrange(field.modulus)
            assert field.mul(a, b) == a * b % field.modulus

    def test_inv(self, field):
        rng = random.Random(3)
        for _ in range(20):
            a = rng.randrange(1, field.modulus)
            assert field.mul(a, field.inv(a)) == 1

    def test_inv_zero_raises(self, field):
        with pytest.raises(FieldError):
            field.inv(0)

    def test_neg(self, field):
        rng = random.Random(4)
        a = rng.randrange(1, field.modulus)
        assert field.add(a, field.neg(a)) == 0
        assert field.neg(0) == 0

    def test_pow_negative_exponent(self, field):
        a = 7 % field.modulus
        if a == 0:
            pytest.skip("tiny field")
        assert field.mul(field.pow(a, -1), a) == 1

    def test_div(self, field):
        a, b = 10 % field.modulus, 7 % field.modulus
        if b == 0:
            pytest.skip("tiny field")
        assert field.mul(field.div(a, b), b) == a % field.modulus


class TestBatchInv:
    def test_matches_scalar_inv(self, field):
        rng = random.Random(5)
        vals = [rng.randrange(1, field.modulus) for _ in range(17)]
        batched = field.batch_inv(vals)
        assert batched == [field.inv(v) for v in vals]

    def test_zero_rejected(self, field):
        with pytest.raises(FieldError):
            field.batch_inv([1, 0, 2])

    def test_empty(self, field):
        assert field.batch_inv([]) == []


class TestRootsOfUnity:
    @pytest.mark.parametrize("log_order", [0, 1, 4, 10])
    def test_root_has_exact_order(self, field, log_order):
        if log_order > field.two_adicity:
            pytest.skip("insufficient 2-adicity")
        order = 1 << log_order
        w = field.root_of_unity(order)
        assert field.pow(w, order) == 1
        if order > 1:
            assert field.pow(w, order // 2) != 1

    def test_non_power_of_two_rejected(self, field):
        with pytest.raises(FieldError):
            field.root_of_unity(3)

    def test_excessive_order_rejected(self, field):
        with pytest.raises(FieldError):
            field.root_of_unity(1 << (field.two_adicity + 1))

    def test_nonresidue_is_nonresidue(self, field):
        g = field.find_nonresidue()
        assert not field.is_square(g)


class TestFieldElement:
    def test_operators(self):
        f = ALT_BN128_R
        a, b = f.element(3), f.element(5)
        assert int(a + b) == 8
        assert int(a * b) == 15
        assert int(b - a) == 2
        assert int(a - b) == f.modulus - 2
        assert int(-a) == f.modulus - 3
        assert (a / b) * b == a
        assert int(a ** 3) == 27

    def test_int_mixing(self):
        f = ALT_BN128_R
        a = f.element(3)
        assert int(2 * a) == 6
        assert int(a + 1) == 4
        assert int(1 - a) == f.modulus - 2
        assert int(6 / a) == 2

    def test_cross_field_rejected(self):
        a = ALT_BN128_R.element(1)
        b = BLS12_381_R.element(1)
        with pytest.raises(FieldError):
            _ = a + b

    def test_immutable_and_hashable(self):
        a = ALT_BN128_R.element(3)
        with pytest.raises(AttributeError):
            a.value = 4
        assert len({a, ALT_BN128_R.element(3)}) == 1

    def test_bool(self):
        f = ALT_BN128_R
        assert not f.element(0)
        assert f.element(1)


@settings(max_examples=60, deadline=None)
@given(a=st.integers(min_value=0), b=st.integers(min_value=0), c=st.integers(min_value=0))
def test_field_axioms_property(a, b, c):
    """Commutativity, associativity and distributivity on BN254's F_r."""
    f = ALT_BN128_R
    a, b, c = a % f.modulus, b % f.modulus, c % f.modulus
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))


@settings(max_examples=40, deadline=None)
@given(a=st.integers(min_value=1))
def test_fermat_property(a):
    f = BLS12_381_R
    a = a % (f.modulus - 1) + 1
    assert f.pow(a, f.modulus - 1) == 1
