"""Tests for dense polynomial arithmetic, and cross-validation of the
POLY stage against textbook polynomial algebra."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.ff import ALT_BN128_R
from repro.ff.poly import Polynomial
from repro.gpusim import V100
from repro.ntt import GzkpNtt, PolyStage, intt

F = ALT_BN128_R


def rand_poly(deg, seed=0):
    rng = random.Random(seed)
    return Polynomial(F, [rng.randrange(F.modulus) for _ in range(deg + 1)])


class TestStructure:
    def test_trim_and_zero(self):
        assert Polynomial(F, [1, 2, 0, 0]).coeffs == (1, 2)
        assert Polynomial(F, [0, 0]).is_zero()
        assert Polynomial.zero(F).degree == -1

    def test_constructors(self):
        assert Polynomial.one(F).coeffs == (1,)
        assert Polynomial.x_power(F, 3).coeffs == (0, 0, 0, 1)
        z = Polynomial.vanishing(F, 4)
        assert z.degree == 4
        assert z.evaluate(1) == 0

    def test_immutability(self):
        p = rand_poly(3)
        with pytest.raises(AttributeError):
            p.coeffs = ()


class TestArithmetic:
    def test_add_sub(self):
        a, b = rand_poly(5, 1), rand_poly(3, 2)
        assert (a + b) - b == a
        assert (a - a).is_zero()

    def test_mul_matches_schoolbook(self):
        a, b = rand_poly(20, 3), rand_poly(17, 4)
        assert a * b == a._mul_schoolbook(b)

    def test_ntt_mul_used_for_large(self):
        a, b = rand_poly(40, 5), rand_poly(40, 6)
        prod = a * b
        assert prod.degree == 80
        # Check at a random point.
        x = 0xABCDEF
        assert prod.evaluate(x) == (
            a.evaluate(x) * b.evaluate(x) % F.modulus
        )

    def test_scalar_mul(self):
        a = rand_poly(4, 7)
        assert (3 * a).evaluate(5) == 3 * a.evaluate(5) % F.modulus

    def test_mul_by_zero(self):
        assert (rand_poly(4, 8) * Polynomial.zero(F)).is_zero()

    def test_divmod(self):
        a, d = rand_poly(23, 9), rand_poly(7, 10)
        q, r = a.divmod(d)
        assert q * d + r == a
        assert r.degree < d.degree

    def test_exact_division(self):
        q_true, d = rand_poly(9, 11), rand_poly(6, 12)
        a = q_true * d
        q, r = a.divmod(d)
        assert r.is_zero()
        assert q == q_true

    def test_division_by_zero(self):
        with pytest.raises(FieldError):
            rand_poly(3, 13).divmod(Polynomial.zero(F))

    def test_field_mismatch(self):
        from repro.ff import BLS12_381_R

        with pytest.raises(FieldError):
            rand_poly(2) + Polynomial(BLS12_381_R, [1])


class TestEvaluationDomain:
    def test_domain_roundtrip(self):
        a = rand_poly(15, 14)
        evals = a.evaluate_on_domain(16)
        assert Polynomial.interpolate_on_domain(F, evals) == a

    def test_domain_values_match_horner(self):
        a = rand_poly(7, 15)
        omega = F.root_of_unity(8)
        evals = a.evaluate_on_domain(8)
        for i in range(8):
            assert evals[i] == a.evaluate(pow(omega, i, F.modulus))

    def test_oversized_degree_rejected(self):
        with pytest.raises(FieldError):
            rand_poly(8, 16).evaluate_on_domain(8)

    def test_vanishing_is_zero_on_domain(self):
        z = Polynomial.vanishing(F, 8)
        omega = F.root_of_unity(8)
        for i in range(8):
            assert z.evaluate(pow(omega, i, F.modulus)) == 0


class TestPolyStageCrossValidation:
    """The seven-NTT pipeline must agree with textbook algebra:
    H = (A*B - C) / Z exactly."""

    def test_h_matches_polynomial_division(self):
        n = 16
        rng = random.Random(17)
        a_ev = [rng.randrange(F.modulus) for _ in range(n)]
        b_ev = [rng.randrange(F.modulus) for _ in range(n)]
        c_ev = [x * y % F.modulus for x, y in zip(a_ev, b_ev)]

        stage = PolyStage(F, GzkpNtt(F, V100))
        h_pipeline = Polynomial(F, stage.compute_h(a_ev, b_ev, c_ev))

        a_poly = Polynomial(F, intt(F, a_ev))
        b_poly = Polynomial(F, intt(F, b_ev))
        c_poly = Polynomial(F, intt(F, c_ev))
        numerator = a_poly * b_poly - c_poly
        q, r = numerator.divmod(Polynomial.vanishing(F, n))
        assert r.is_zero()
        assert h_pipeline == q


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_ring_axioms_property(seed):
    rng = random.Random(seed)
    a = Polynomial(F, [rng.randrange(F.modulus)
                       for _ in range(rng.randrange(1, 10))])
    b = Polynomial(F, [rng.randrange(F.modulus)
                       for _ in range(rng.randrange(1, 10))])
    c = Polynomial(F, [rng.randrange(F.modulus)
                       for _ in range(rng.randrange(1, 10))])
    assert a * b == b * a
    assert a * (b + c) == a * b + a * c
    assert (a * b) * c == a * (b * c)
