"""End-to-end tests for the concurrent proving service.

Covers the service's whole contract: batches of jobs across all three
curves on a real worker pool, independently re-verifiable proof bytes,
per-phase telemetry whose top-level spans tile the job wall clock,
strict wire-format decoding, parent-side validation that never reaches
a worker, in-worker failures that never kill a worker, per-job timeout
with bounded retry, and graceful degradation when the native kernels
are disabled.
"""

import time

import pytest

from repro.curves.params import CURVES
from repro.errors import ValidationError
from repro.service import (ProofJob, ProvingService, Telemetry,
                           encode_request, decode_request)
from repro.service.registry import CIRCUIT_REGISTRY, CircuitSpec, \
    register_circuit
from repro.service.service import setup_for
from repro.service.wire import MAGIC
from repro.snark.serialize import deserialize_proof
from repro.snark.verifier import Groth16Verifier

ALL_CURVES = ["ALT-BN128", "BLS12-381", "MNT4753"]


def _independently_verifies(result) -> bool:
    """Re-derive the verifying key from public names + seed and check
    the returned proof bytes — no trust in the worker."""
    curve = CURVES[result.curve]
    _, keys = setup_for(result.curve, result.circuit)
    proof = deserialize_proof(result.proof_bytes, curve)
    verifier = Groth16Verifier(keys.verifying_key, curve)
    return verifier.verify(proof, result.public_inputs)


# -- the big batch ------------------------------------------------------------------


@pytest.fixture(scope="module")
def batch_results():
    jobs = [
        ProofJob("ALT-BN128", "square", (3,)),
        ProofJob("ALT-BN128", "product", (4, 5)),
        ProofJob("ALT-BN128", "cubic", (2,)),
        ProofJob("BLS12-381", "square", (6,)),
        ProofJob("BLS12-381", "range4", (7,)),
        ProofJob("BLS12-381", "product", (8, 9)),
        ProofJob("MNT4753", "square", (10,)),
        ProofJob("MNT4753", "cubic", (4,)),
        encode_request("ALT-BN128", "range4", [13]),
    ]
    with ProvingService(workers=2, timeout=120, retries=1) as svc:
        results = svc.prove_batch(jobs)
    return jobs, results


def test_batch_all_jobs_verify(batch_results):
    jobs, results = batch_results
    assert len(results) == len(jobs) >= 8
    assert all(r.ok and r.verified for r in results)
    assert {r.curve for r in results} == set(ALL_CURVES)
    for r in results:
        assert _independently_verifies(r)


def test_batch_uses_both_workers(batch_results):
    _, results = batch_results
    assert {r.worker for r in results} == {0, 1}


def test_batch_phase_breakdown(batch_results):
    _, results = batch_results
    for r in results:
        phases = r.phase_seconds()
        assert {"POLY", "MSM", "verify", "serialize"} <= set(phases)
        assert phases["MSM"] > 0
        # Top-level phases tile the job span: their sum approximates
        # the job's wall clock (gaps are only rng and glue code).
        wall = r.wall_seconds()
        assert wall > 0
        assert 0.5 * wall <= sum(phases.values()) <= 1.05 * wall


def test_batch_msm_spans_and_ops(batch_results):
    _, results = batch_results
    for r in results:
        msm = next(c for c in r.job_span["children"] if c["name"] == "MSM")
        names = {c["name"] for c in msm["children"]}
        assert names == {"MSM-A", "MSM-B-G1", "MSM-B-G2", "MSM-C", "MSM-H"}
        # every MSM child attributed real group-op counts (MSM-H is
        # legitimately empty for 1-constraint circuits: |h_query| = 0)
        for child in msm["children"]:
            assert child["ops"] or child["name"] == "MSM-H", child["name"]
        poly = next(c for c in r.job_span["children"]
                    if c["name"] == "POLY")
        assert poly["ops"].get("fr_mul", 0) > 0


def test_job_ids_and_request_bytes_job(batch_results):
    jobs, results = batch_results
    assert len({r.job_id for r in results}) == len(results)
    # the request-bytes job decoded to the right circuit
    assert results[-1].circuit == "range4"


# -- wire format --------------------------------------------------------------------


def test_request_roundtrip():
    blob = encode_request("BLS12-381", "product", [123, 456],
                          backend="numpy")
    req = decode_request(blob)
    assert (req.curve, req.circuit, req.witness, req.backend) == \
        ("BLS12-381", "product", (123, 456), "numpy")


def test_request_decode_strictness():
    blob = encode_request("ALT-BN128", "square", [7])
    with pytest.raises(ValidationError):
        decode_request(b"NOTRQ" + blob[5:])          # bad magic
    with pytest.raises(ValidationError):
        decode_request(blob[:len(MAGIC)] + b"\x63" + blob[7:])  # version
    for cut in (3, len(MAGIC), len(blob) - 1):
        with pytest.raises(ValidationError):
            decode_request(blob[:cut])               # truncations
    with pytest.raises(ValidationError):
        decode_request(blob + b"\x00")               # trailing bytes


# -- validation and per-job failure isolation ---------------------------------------


def test_validation_rejects_without_reaching_workers():
    fr = CURVES["ALT-BN128"].fr
    bad_jobs = [
        ProofJob("NO-SUCH-CURVE", "square", (1,)),
        ProofJob("ALT-BN128", "no-such-circuit", (1,)),
        ProofJob("ALT-BN128", "square", (1, 2)),          # arity
        ProofJob("ALT-BN128", "square", (fr.modulus,)),   # range
        ProofJob("ALT-BN128", "square", (-1,)),           # negative
    ]
    with ProvingService(workers=1, parallel_msm=False) as svc:
        results = svc.prove_batch(bad_jobs + [
            ProofJob("ALT-BN128", "square", (7,)),
        ])
    for r in results[:-1]:
        assert not r.ok and r.error_kind == "validation"
        assert r.worker is None          # never queued
    assert results[-1].ok               # pool unharmed


def test_unsatisfiable_witness_is_a_job_error_not_a_dead_worker():
    with ProvingService(workers=1) as svc:
        results = svc.prove_batch([
            ProofJob("ALT-BN128", "range4", (99,)),   # out of [0, 16)
            ProofJob("ALT-BN128", "range4", (9,)),
        ])
    assert not results[0].ok and results[0].error_kind == "proof"
    assert "satisfy" in results[0].error
    assert results[1].ok and results[1].verified


# -- timeout and retry --------------------------------------------------------------


def _sleepy_assign(field, witness):
    time.sleep(60)
    return [1, field.mul(witness[0], witness[0]), witness[0]]


def test_timeout_kills_worker_retries_then_fails():
    register_circuit(CircuitSpec(
        "sleepy", 1, CIRCUIT_REGISTRY["square"].build, _sleepy_assign,
        "hangs in witness assignment (test only)"))
    try:
        # timeout must sit between a real job's cost (~2s) and the
        # sleepy circuit's 60s hang
        with ProvingService(workers=1, timeout=10.0, retries=1,
                            parallel_msm=False) as svc:
            results = svc.prove_batch([
                ProofJob("ALT-BN128", "sleepy", (3,)),
                ProofJob("ALT-BN128", "square", (3,)),
            ])
        assert not results[0].ok
        assert results[0].error_kind == "timeout"
        assert results[0].attempts == 2        # 1 try + 1 retry
        # respawned worker still proves the next job
        assert results[1].ok and results[1].verified
    finally:
        del CIRCUIT_REGISTRY["sleepy"]


# -- graceful degradation -----------------------------------------------------------


def test_native_disabled_degrades_gracefully():
    with ProvingService(workers=1, env={"REPRO_NATIVE": "0"}) as svc:
        results = svc.prove_batch([
            ProofJob("ALT-BN128", "product", (3, 4)),
        ])
    r = results[0]
    assert r.ok and r.verified
    downs = r.downgrades()
    assert downs, "expected a native-kernel fallback event"
    assert any("native" in d["kind"] for d in downs)
    # the worker honoured its env override from scratch (reset_native
    # post-fork) and the loader's disable event reached job telemetry
    kinds = [e["kind"] for e in r.telemetry.get("events", [])]
    assert "native-kernel-disabled" in kinds


def test_native_disabled_worker_still_independently_verifies():
    """Per-worker REPRO_NATIVE=0 changes the compute path, never
    soundness: the scalar-fallback proof verifies against a key
    derived outside the service."""
    job = ProofJob("ALT-BN128", "cubic", (3,), backend="numpy")
    with ProvingService(workers=1, env={"REPRO_NATIVE": "0"}) as svc:
        off = svc.prove_batch([job])[0]
    assert off.ok and off.verified
    assert _independently_verifies(off)


def test_autotuned_service_proves_and_verifies():
    with ProvingService(workers=0, autotune=True) as svc:
        r = svc.prove_batch([ProofJob("ALT-BN128", "cubic", (5,))])[0]
    assert r.ok and r.verified
    assert _independently_verifies(r)


def test_unknown_backend_downgrades_to_python():
    with ProvingService(workers=0) as svc:
        r = svc.prove_batch([
            ProofJob("ALT-BN128", "square", (5,), backend="cuda"),
        ])[0]
    assert r.ok and r.backend == "python"
    assert any(d["kind"] == "backend-downgrade" for d in r.downgrades())


# -- inline mode --------------------------------------------------------------------


def test_inline_mode_matches_pool_contract():
    with ProvingService(workers=0, parallel_msm=False) as svc:
        results = svc.prove_batch([
            ProofJob("BLS12-381", "cubic", (5,)),
            encode_request("ALT-BN128", "square", [11]),
        ])
    assert all(r.ok and r.verified for r in results)
    for r in results:
        assert _independently_verifies(r)
        assert {"POLY", "MSM"} <= set(r.phase_seconds())


# -- telemetry unit behaviour -------------------------------------------------------


def test_telemetry_span_nesting_and_ops():
    t = Telemetry()
    with t.span("outer"):
        with t.span("inner") as inner:
            inner.counter.count("fr_mul", 3)
    assert len(t.spans) == 1
    outer = t.spans[0]
    assert outer.child("inner") is not None
    assert outer.total_ops()["fr_mul"] == 3
    assert outer.own_ops == {}
    exported = t.to_dict()
    assert exported["spans"][0]["children"][0]["ops"] == {"fr_mul": 3}


def test_telemetry_events_and_downgrades():
    t = Telemetry()
    t.record_event("backend-downgrade", "numpy -> python")
    t.record_event("retry", "attempt 2")
    assert len(t.downgrades()) == 1
    assert t.to_dict()["events"][1]["kind"] == "retry"
