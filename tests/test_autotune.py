"""Cost-model autotuner: search determinism, disk round-trip, and the
certifier gate that every tuned cadence must clear."""

import random

import pytest

from repro.backend.autotune import (
    WINDOW_RANGE,
    KernelAutotuner,
    TunedProfile,
    TuningError,
)
from repro.curves import CURVES
from repro.errors import FieldError
from repro.ff.params import SCALAR_FIELDS


@pytest.fixture()
def private_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
    return tmp_path


def test_msm_search_beats_or_matches_defaults(private_cache):
    """The joint (k, M) search must never model slower than the
    profiler default it replaces."""
    from repro.backend.autotune import _native_point_muls
    from repro.gpusim import V100
    from repro.msm.gzkp import GzkpMsm

    curve = CURVES["ALT-BN128"]
    engine = GzkpMsm(curve.g1, curve.fr.bits, V100)
    tuner = KernelAutotuner(persist=False)
    n = 512
    cfg = tuner.msm_config(engine, n)
    assert cfg.window in WINDOW_RANGE
    # the profiler default fixes M = _interval_for(n, k); the joint
    # search includes every such point, so it can only improve --
    # replayed under the same point-op pricing the search used
    pm = _native_point_muls(engine)
    default_best = min(
        V100.time_of(engine._plan_with_cfg(
            n, engine._make_config(n, k, engine._interval_for(n, k)),
            None, point_muls=pm))
        for k in WINDOW_RANGE
    )
    tuned = V100.time_of(engine._plan_with_cfg(n, cfg, None, point_muls=pm))
    assert tuned <= default_best + 1e-12


def test_profile_search_is_deterministic(private_cache):
    curve = CURVES["ALT-BN128"]
    a = KernelAutotuner(persist=False).profile(curve, 256)
    b = KernelAutotuner(persist=False).profile(curve, 256)
    assert (a.g1_window, a.g1_interval, a.g2_window, a.g2_interval,
            a.clean_every) == \
        (b.g1_window, b.g1_interval, b.g2_window, b.g2_interval,
         b.clean_every)
    assert a.source == b.source == "search"


def test_profile_disk_round_trip(private_cache):
    curve = CURVES["BLS12-381"]
    fresh = KernelAutotuner().profile(curve, 256)
    assert fresh.source == "search"
    reloaded = KernelAutotuner().profile(curve, 256)
    assert reloaded.source == "disk"
    assert (reloaded.g1_window, reloaded.g1_interval,
            reloaded.g2_window, reloaded.g2_interval,
            reloaded.clean_every) == \
        (fresh.g1_window, fresh.g1_interval,
         fresh.g2_window, fresh.g2_interval, fresh.clean_every)


def test_tampered_profile_is_resought(private_cache):
    """A profile edited to an out-of-range window fails revalidation
    and triggers a fresh search — never a blind trust of disk state."""
    import json
    import os

    curve = CURVES["ALT-BN128"]
    tuner = KernelAutotuner()
    prof = tuner.profile(curve, 256)
    path = tuner._profile_path(curve.name, 256, prof.device)
    payload = json.loads(open(path).read())
    payload["g1_window"] = 99  # outside WINDOW_RANGE
    with open(path, "w") as fh:
        json.dump(payload, fh)
    reloaded = KernelAutotuner().profile(curve, 256)
    assert reloaded.source == "search"
    assert reloaded.g1_window == prof.g1_window
    assert os.path.exists(path)


@pytest.mark.parametrize("curve_name", sorted(SCALAR_FIELDS))
def test_tuned_cadence_is_certified(private_cache, curve_name):
    tuner = KernelAutotuner(persist=False)
    modulus = SCALAR_FIELDS[curve_name].modulus
    cadence, certs = tuner.tune_cadence(modulus, f"{curve_name}.Fr")
    assert cadence >= 2
    assert set(certs) == {"numpy-limb", "native-mont", "native-jacobian"}
    for fam, cert in certs.items():
        assert cert["ok"], fam
    # the profile-level certificate is the same machine-checked object
    prof = tuner.profile(CURVES[curve_name], 128)
    assert isinstance(prof, TunedProfile)
    assert prof.clean_every == cadence
    assert all(c["ok"] for c in prof.certificate.values())


def test_weakened_cadence_cannot_be_applied(private_cache):
    """The runtime gate (configure_clean_cadence) rejects any cadence
    past the certified bound — the path a tampered tuner would take."""
    nl = pytest.importorskip("repro.backend.numpy_limb")
    if not nl.numpy_available():
        pytest.skip("numpy not available")
    from repro.analysis.bounds import certified_safe_clean_every, limb_geometry

    modulus = SCALAR_FIELDS["ALT-BN128"].modulus
    geom = limb_geometry(modulus, nl.LIMB_BITS)
    safe = certified_safe_clean_every(nl.LIMB_BITS, geom.lg)
    with pytest.raises(FieldError):
        nl.configure_clean_cadence(modulus, safe + 1)
    # the certified maximum itself applies cleanly, and None restores
    # the conservative formula default
    assert nl.configure_clean_cadence(modulus, safe) == safe
    restored = nl.configure_clean_cadence(modulus, None)
    assert 2 <= restored <= safe


def test_uncertifiable_modulus_raises(private_cache):
    tuner = KernelAutotuner(persist=False)
    with pytest.raises((TuningError, Exception)):
        tuner.tune_cadence((1 << 64) - 2, "even")  # no n0inv exists


def test_autotuned_proof_is_byte_identical(private_cache):
    """Tuning changes throughput knobs only: an autotuned prover and a
    default prover emit the same group elements with identical masks."""
    from repro.circuits import merkle_tree_circuit
    from repro.snark import setup
    from repro.snark.gzkp_prover import make_gzkp_prover

    curve = CURVES["ALT-BN128"]
    r1cs, assignment = merkle_tree_circuit(curve.fr, depth=2, seed=31)
    keys = setup(r1cs, curve, random.Random(31))
    plain = make_gzkp_prover(r1cs, keys.proving_key, curve,
                             msm_window=6, msm_interval=3)
    tuned = make_gzkp_prover(r1cs, keys.proving_key, curve,
                             autotune=True)
    assert tuned.tuner is not None
    p_plain = plain._prove_with_masks(assignment, 12345, 67890)
    p_tuned = tuned._prove_with_masks(assignment, 12345, 67890)
    assert (p_plain.a, p_plain.b, p_plain.c) == \
        (p_tuned.a, p_tuned.b, p_tuned.c)
