"""Tests for the end-to-end system models (Tables 2-4 shapes)."""

import pytest

from repro.circuits import ZCASH_WORKLOADS, ZKSNARK_WORKLOADS, workload
from repro.systems import (
    BellmanSystem,
    BellpersonSystem,
    GzkpSystem,
    LibsnarkSystem,
    MinaSystem,
    best_cpu_system,
    best_gpu_baseline,
)


class TestSystemConstruction:
    def test_best_cpu_picks(self):
        assert best_cpu_system("MNT4753").name == "libsnark"
        assert best_cpu_system("BLS12-381").name == "bellman"

    def test_best_gpu_picks(self):
        assert best_gpu_baseline("MNT4753").name == "MINA"
        assert best_gpu_baseline("BLS12-381").name == "bellperson"
        with pytest.raises(ValueError):
            best_gpu_baseline("ALT-BN128")

    def test_bad_gpu_count(self):
        with pytest.raises(ValueError):
            GzkpSystem("BLS12-381", n_gpus=0)
        with pytest.raises(ValueError):
            BellpersonSystem(n_gpus=0)


class TestProofShape:
    def test_poly_is_seven_ntts(self):
        gz = GzkpSystem("BLS12-381")
        w = workload("Sapling_Spend")
        single = gz.ntt_seconds(w.domain_size)
        assert gz.poly_stage_seconds(w) == pytest.approx(7 * single)

    def test_timings_positive_and_total(self):
        gz = GzkpSystem("MNT4753")
        t = gz.prove_seconds(workload("AES"))
        assert t.poly_seconds > 0
        assert t.msm_seconds > 0
        assert t.total_seconds == t.poly_seconds + t.msm_seconds


class TestTable2Shapes:
    """The orderings Table 2 establishes, checked cell-free."""

    @pytest.fixture(scope="class")
    def timings(self):
        systems = {
            "libsnark": LibsnarkSystem("MNT4753"),
            "MINA": MinaSystem("MNT4753"),
            "GZKP": GzkpSystem("MNT4753"),
        }
        return {
            name: {w: s.prove_seconds(ZKSNARK_WORKLOADS[w])
                   for w in ZKSNARK_WORKLOADS}
            for name, s in systems.items()
        }

    def test_gzkp_fastest_everywhere(self, timings):
        for w in ZKSNARK_WORKLOADS:
            gz = timings["GZKP"][w].total_seconds
            assert gz < timings["libsnark"][w].total_seconds
            assert gz < timings["MINA"][w].total_seconds

    def test_order_of_magnitude_speedups(self, timings):
        """Paper: 16.3x-78.2x over CPU, 14.0x-48.1x over MINA."""
        for w in ZKSNARK_WORKLOADS:
            gz = timings["GZKP"][w].total_seconds
            assert timings["libsnark"][w].total_seconds / gz > 10
            assert timings["MINA"][w].total_seconds / gz > 5

    def test_mina_limited_improvement_on_sparse(self, timings):
        """§5.2: 'MINA provides quite limited improvement over the best
        CPU solution' on real-world sparse workloads."""
        for w in ZKSNARK_WORKLOADS:
            ratio = (timings["libsnark"][w].total_seconds
                     / timings["MINA"][w].total_seconds)
            assert ratio < 4.0  # far from GZKP's 16x-78x

    def test_mina_poly_equals_libsnark_poly(self, timings):
        """MINA only accelerates MSM; its POLY time is libsnark's."""
        for w in ZKSNARK_WORKLOADS:
            assert timings["MINA"][w].poly_seconds == pytest.approx(
                timings["libsnark"][w].poly_seconds
            )


class TestTable3Shapes:
    @pytest.fixture(scope="class")
    def timings(self):
        systems = {
            "bellman": BellmanSystem("BLS12-381"),
            "bellperson": BellpersonSystem("BLS12-381"),
            "GZKP": GzkpSystem("BLS12-381"),
        }
        return {
            name: {w: s.prove_seconds(ZCASH_WORKLOADS[w])
                   for w in ZCASH_WORKLOADS}
            for name, s in systems.items()
        }

    def test_gzkp_fastest(self, timings):
        for w in ZCASH_WORKLOADS:
            gz = timings["GZKP"][w].total_seconds
            assert gz < timings["bellman"][w].total_seconds
            assert gz < timings["bellperson"][w].total_seconds

    def test_msm_improvement_drives_the_win(self, timings):
        """§5.2: GZKP improves 'especially... the more time-consuming
        MSM stage' — by ~8x vs bellperson on Sprout."""
        sprout_bp = timings["bellperson"]["Sprout"]
        sprout_gz = timings["GZKP"]["Sprout"]
        assert sprout_bp.msm_seconds / sprout_gz.msm_seconds > 4

    def test_shielded_transaction_speedup(self, timings):
        """Paper: a shielded transaction (Spend + Output mix) is 37.1x
        faster than bellman and 9.2x faster than bellperson."""
        def tx(name):
            t = timings[name]
            return (t["Sapling_Spend"].total_seconds
                    + t["Sapling_Output"].total_seconds)

        assert tx("bellman") / tx("GZKP") > 10
        assert tx("bellperson") / tx("GZKP") > 4


class TestTable4Shapes:
    def test_multi_gpu_helps_gzkp(self):
        single = GzkpSystem("BLS12-381", n_gpus=1)
        quad = GzkpSystem("BLS12-381", n_gpus=4)
        w = workload("Sprout")
        t1 = single.prove_seconds(w).total_seconds
        t4 = quad.prove_seconds(w).total_seconds
        assert 1.5 < t1 / t4 < 4.0  # paper: ~2.1x average, best on Sprout

    def test_small_workloads_scale_worse(self):
        single = GzkpSystem("BLS12-381", n_gpus=1)
        quad = GzkpSystem("BLS12-381", n_gpus=4)
        gains = {}
        for name in ("Sapling_Output", "Sprout"):
            w = workload(name)
            gains[name] = (single.prove_seconds(w).total_seconds
                           / quad.prove_seconds(w).total_seconds)
        assert gains["Sprout"] > gains["Sapling_Output"]

    def test_gzkp_scales_better_than_bellperson(self):
        """Paper: 'due to better scalability, GZKP achieves on average
        13.2x speedup' on 4 cards (vs 8.7x on one)."""
        w = workload("Sprout")
        gz4 = GzkpSystem("BLS12-381", n_gpus=4).prove_seconds(w)
        bp4 = BellpersonSystem(n_gpus=4).prove_seconds(w)
        gz1 = GzkpSystem("BLS12-381").prove_seconds(w)
        bp1 = BellpersonSystem().prove_seconds(w)
        speedup_4 = bp4.total_seconds / gz4.total_seconds
        speedup_1 = bp1.total_seconds / gz1.total_seconds
        assert speedup_4 > speedup_1
