"""Extension-field tower and pairing tests (Groth16's verification
substrate)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.ff import ALT_BN128_Q, ExtensionField, PrimeField
from repro.curves import (
    bls12_381_g1,
    bls12_381_g2,
    bls12_381_pairing,
    bn128_g1,
    bn128_g2,
    bn128_pairing,
)

F13 = PrimeField(13, name="F_13")
# F_13[x]/(x^2 + 1): -1 is a non-residue mod 13? 5^2=25=12=-1, so it IS a
# residue; use x^2 - 2 instead (2 is a non-residue mod 13).
F169 = ExtensionField(F13, [-2, 0], name="F_169")


class TestExtensionFieldSmall:
    def test_add_sub(self):
        a = F169.element([3, 4])
        b = F169.element([10, 12])
        assert (a + b).coeffs == (0, 3)
        assert (a - b).coeffs == (6, 5)

    def test_mul_reduction(self):
        # (x)(x) = x^2 = 2 in F_13[x]/(x^2-2).
        x = F169.element([0, 1])
        assert (x * x).coeffs == (2, 0)

    def test_scalar_mul(self):
        a = F169.element([3, 4])
        assert (a * 2).coeffs == (6, 8)
        assert (2 * a).coeffs == (6, 8)
        assert a.scale(13).coeffs == (0, 0)

    def test_inverse_all_nonzero_elements(self):
        one = F169.one
        for c0 in range(13):
            for c1 in range(13):
                if c0 == c1 == 0:
                    continue
                a = F169.element([c0, c1])
                assert a * a.inverse() == one

    def test_zero_inverse_raises(self):
        with pytest.raises(FieldError):
            F169.zero.inverse()

    def test_pow(self):
        a = F169.element([3, 4])
        assert a ** 0 == F169.one
        assert a ** 1 == a
        assert a ** 5 == a * a * a * a * a
        assert a ** (-2) == (a * a).inverse()

    def test_field_order_exponent(self):
        # |F_169^*| = 168; Lagrange.
        a = F169.element([3, 4])
        assert a ** 168 == F169.one

    def test_conjugate(self):
        a = F169.element([3, 4])
        assert a.conjugate().coeffs == (3, 9)
        # Norm a * conj(a) lands in the base field.
        assert (a * a.conjugate()).coeffs[1] == 0

    def test_wrong_coeff_count_rejected(self):
        with pytest.raises(FieldError):
            F169.element([1, 2, 3])

    def test_cross_field_mix_rejected(self):
        other = ExtensionField(F13, [-2, 0, 0], name="F_13^3")
        with pytest.raises(FieldError):
            _ = F169.element([1, 2]) + other.element([1, 2, 3])


@settings(max_examples=50, deadline=None)
@given(
    c=st.tuples(*[st.integers(min_value=0, max_value=12)] * 2),
    d=st.tuples(*[st.integers(min_value=0, max_value=12)] * 2),
    e=st.tuples(*[st.integers(min_value=0, max_value=12)] * 2),
)
def test_extension_ring_axioms_property(c, d, e):
    a, b, g = F169.element(list(c)), F169.element(list(d)), F169.element(list(e))
    assert a * b == b * a
    assert (a * b) * g == a * (b * g)
    assert a * (b + g) == a * b + a * g


class TestFq12Tower:
    def test_bn128_fq12_inverse(self):
        eng = bn128_pairing()
        rng = random.Random(0)
        a = eng.fq12.element([rng.randrange(ALT_BN128_Q.modulus) for _ in range(12)])
        assert a * a.inverse() == eng.fq12.one

    def test_embedding_consistency(self):
        """i = w^6 - 9 in the BN128 tower: embedding Fq2 elements through
        the twist must respect multiplication."""
        eng = bn128_pairing()
        w6 = eng.fq12.element([0] * 6 + [1] + [0] * 5)
        i_embed = w6 - eng.fq12.from_base(9)
        assert i_embed * i_embed == eng.fq12.from_base(-1)

    def test_bls_embedding_consistency(self):
        eng = bls12_381_pairing()
        w6 = eng.fq12.element([0] * 6 + [1] + [0] * 5)
        i_embed = w6 - eng.fq12.from_base(1)
        assert i_embed * i_embed == eng.fq12.from_base(-1)


class TestBn128Pairing:
    """BN254 pairing — full bilinearity battery (fast enough to run)."""

    @pytest.fixture(scope="class")
    def base(self):
        eng = bn128_pairing()
        e = eng.pairing(bn128_g1.generator, bn128_g2.generator)
        return eng, e

    def test_nondegenerate(self, base):
        eng, e = base
        assert e != eng.fq12.one

    def test_bilinear_left(self, base):
        eng, e = base
        p2 = bn128_g1.scalar_mul(2, bn128_g1.generator)
        assert eng.pairing(p2, bn128_g2.generator) == e * e

    def test_bilinear_right(self, base):
        eng, e = base
        q3 = bn128_g2.scalar_mul(3, bn128_g2.generator)
        assert eng.pairing(bn128_g1.generator, q3) == e ** 3

    def test_bilinear_both(self, base):
        eng, e = base
        p5 = bn128_g1.scalar_mul(5, bn128_g1.generator)
        q7 = bn128_g2.scalar_mul(7, bn128_g2.generator)
        assert eng.pairing(p5, q7) == e ** 35

    def test_negation(self, base):
        eng, e = base
        pneg = bn128_g1.neg(bn128_g1.generator)
        assert eng.pairing(pneg, bn128_g2.generator) == e.inverse()

    def test_infinity_pairs_to_one(self, base):
        eng, _ = base
        assert eng.pairing(None, bn128_g2.generator) == eng.fq12.one
        assert eng.pairing(bn128_g1.generator, None) == eng.fq12.one

    def test_pairing_product_check(self, base):
        """e(P, Q) * e(-P, Q) == 1 via the batched product check."""
        eng, _ = base
        pairs = [
            (bn128_g1.generator, bn128_g2.generator),
            (bn128_g1.neg(bn128_g1.generator), bn128_g2.generator),
        ]
        assert eng.pairing_product_is_one(pairs)

    def test_pairing_product_check_rejects(self, base):
        eng, _ = base
        pairs = [
            (bn128_g1.generator, bn128_g2.generator),
            (bn128_g1.generator, bn128_g2.generator),
        ]
        assert not eng.pairing_product_is_one(pairs)


@pytest.mark.slow
class TestBls12381Pairing:
    """BLS12-381 pairing — one bilinearity check (slower field)."""

    def test_bilinearity(self):
        eng = bls12_381_pairing()
        e = eng.pairing(bls12_381_g1.generator, bls12_381_g2.generator)
        assert e != eng.fq12.one
        p2 = bls12_381_g1.scalar_mul(2, bls12_381_g1.generator)
        assert eng.pairing(p2, bls12_381_g2.generator) == e * e
