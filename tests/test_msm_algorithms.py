"""Functional correctness of every MSM implementation against the naive
oracle, across curves, scales and scalar distributions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import bn128_g1, bn128_g2, bls12_381_g1, mnt4753_g1
from repro.errors import MsmError
from repro.ff import OpCounter
from repro.gpusim import V100
from repro.gpusim.device import XEON_5117
from repro.msm import (
    CpuMsm,
    GzkpMsm,
    StrausMsm,
    SubMsmPippenger,
    naive_msm,
    num_windows,
    optimal_cpu_window,
    scalar_digits,
)

G = bn128_g1
L = 254


def fixture_points(n, seed=0):
    rng = random.Random(seed)
    pts = [G.random_point(rng) for _ in range(n)]
    scs = [rng.randrange(G.order) for _ in range(n)]
    return scs, pts


class TestDigits:
    def test_digit_reconstruction(self):
        s = 0xDEADBEEF12345678
        k = 7
        digits = scalar_digits(s, 64, k)
        assert sum(d << (t * k) for t, d in enumerate(digits)) == s

    def test_num_windows(self):
        assert num_windows(254, 10) == 26
        assert num_windows(255, 16) == 16
        assert num_windows(750, 4) == 188

    def test_negative_scalar_rejected(self):
        with pytest.raises(MsmError):
            scalar_digits(-1, 64, 4)

    def test_bad_window_rejected(self):
        with pytest.raises(MsmError):
            num_windows(254, 0)

    @settings(max_examples=50, deadline=None)
    @given(s=st.integers(min_value=0, max_value=(1 << 254) - 1),
           k=st.integers(min_value=1, max_value=24))
    def test_digit_reconstruction_property(self, s, k):
        digits = scalar_digits(s, 254, k)
        assert sum(d << (t * k) for t, d in enumerate(digits)) == s


ALGORITHMS = {
    "pippenger": lambda: SubMsmPippenger(G, L, V100),
    "straus": lambda: StrausMsm(G, L, V100, window=4),
    "gzkp": lambda: GzkpMsm(G, L, V100, window=6, interval=4),
    "gzkp_full_prep": lambda: GzkpMsm(G, L, V100, window=8, interval=1),
    "cpu": lambda: CpuMsm(G, L, XEON_5117),
}


@pytest.fixture(params=list(ALGORITHMS), ids=list(ALGORITHMS))
def algorithm(request):
    return ALGORITHMS[request.param]()


class TestMsmCorrectness:
    def test_random_inputs(self, algorithm):
        scs, pts = fixture_points(24, seed=1)
        assert algorithm.compute(scs, pts) == naive_msm(G, scs, pts)

    def test_empty(self, algorithm):
        assert algorithm.compute([], []) is None

    def test_single_element(self, algorithm):
        scs, pts = fixture_points(1, seed=2)
        assert algorithm.compute(scs, pts) == G.scalar_mul(scs[0], pts[0])

    def test_all_zero_scalars(self, algorithm):
        _, pts = fixture_points(8, seed=3)
        assert algorithm.compute([0] * 8, pts) is None

    def test_sparse_scalars(self, algorithm):
        """The paper's real-world distribution: many 0s and 1s (§4.2)."""
        rng = random.Random(4)
        _, pts = fixture_points(20, seed=4)
        scs = [0] * 8 + [1] * 8 + [rng.randrange(G.order) for _ in range(4)]
        rng.shuffle(scs)
        assert algorithm.compute(scs, pts) == naive_msm(G, scs, pts)

    def test_max_scalar(self, algorithm):
        _, pts = fixture_points(3, seed=5)
        scs = [G.order - 1] * 3
        assert algorithm.compute(scs, pts) == naive_msm(G, scs, pts)

    def test_points_with_infinity(self, algorithm):
        scs, pts = fixture_points(6, seed=6)
        pts[2] = None
        pts[4] = None
        assert algorithm.compute(scs, pts) == naive_msm(G, scs, pts)

    def test_length_mismatch_rejected(self, algorithm):
        scs, pts = fixture_points(4, seed=7)
        with pytest.raises(MsmError):
            algorithm.compute(scs[:3], pts)


class TestMsmOtherGroups:
    def test_bls12_381_g1(self):
        rng = random.Random(8)
        pts = [bls12_381_g1.random_point(rng) for _ in range(12)]
        scs = [rng.randrange(bls12_381_g1.order) for _ in range(12)]
        gz = GzkpMsm(bls12_381_g1, 255, V100, window=6, interval=2)
        assert gz.compute(scs, pts) == naive_msm(bls12_381_g1, scs, pts)

    @pytest.mark.slow
    def test_mnt4753_g1(self):
        rng = random.Random(9)
        pts = [mnt4753_g1.random_point(rng) for _ in range(6)]
        scs = [rng.randrange(mnt4753_g1.order) for _ in range(6)]
        gz = GzkpMsm(mnt4753_g1, 750, V100, window=8, interval=8)
        assert gz.compute(scs, pts) == naive_msm(mnt4753_g1, scs, pts)

    def test_g2_msm(self):
        """MSM over G2 (Fq2 coordinates) — the proving key's Q vector."""
        rng = random.Random(10)
        pts = [bn128_g2.random_point(rng) for _ in range(8)]
        scs = [rng.randrange(bn128_g2.order) for _ in range(8)]
        gz = GzkpMsm(bn128_g2, L, V100, window=5, interval=3,
                     fq_mul_factor=3.0)
        assert gz.compute(scs, pts) == naive_msm(bn128_g2, scs, pts)


class TestGzkpInternals:
    def test_literal_algorithm1_matches_residual(self):
        """Algorithm 1 as printed and the residual-sub-bucket realisation
        compute the same function for several (k, M)."""
        scs, pts = fixture_points(16, seed=11)
        for k, m in [(4, 1), (5, 2), (6, 3), (8, 5)]:
            gz = GzkpMsm(G, L, V100, window=k, interval=m)
            assert gz.compute(scs, pts) == gz.compute_literal(scs, pts)

    def test_preprocess_table_weights(self):
        """Checkpoint row m holds 2^(m*M*k) * P."""
        gz = GzkpMsm(G, L, V100, window=6, interval=4)
        cfg = gz.configure(4)
        _, pts = fixture_points(4, seed=12)
        table = gz.preprocess(pts, cfg)
        step = cfg.interval * cfg.window
        for m_idx in range(1, len(table)):
            weight = 1 << (m_idx * step)
            for orig, prep in zip(pts, table[m_idx]):
                assert prep == G.scalar_mul(weight, orig)

    def test_interval_grows_with_scale(self):
        """Algorithm 1's adaptivity: M rises once the full table would
        blow the preprocessing budget (Figure 9's plateau driver)."""
        gz = GzkpMsm(bls12_381_g1, 255, V100)
        small = gz.configure(1 << 16)
        large = gz.configure(1 << 26)
        assert small.interval == 1
        assert large.interval > 1
        budget = 0.6 * V100.global_mem_bytes
        assert large.preprocess_bytes <= budget * 1.05

    def test_reused_table(self):
        """The table is computed at setup; compute() accepts it
        prebuilt (how the prover uses it across proofs)."""
        scs, pts = fixture_points(10, seed=13)
        gz = GzkpMsm(G, L, V100, window=5, interval=2)
        table = gz.preprocess(pts, gz.configure(len(pts)))
        assert gz.compute(scs, pts, table=table) == naive_msm(G, scs, pts)

    def test_phase_attribution(self):
        scs, pts = fixture_points(8, seed=14)
        counter = OpCounter()
        GzkpMsm(G, L, V100, window=5, interval=2).compute(
            scs, pts, counter=counter
        )
        assert counter.by_phase["point-merging"]["padd"] > 0
        assert counter.by_phase["bucket-reduction"]["padd"] > 0


class TestCpuWindow:
    def test_optimum_grows_with_n(self):
        assert optimal_cpu_window(1 << 14, 254) < optimal_cpu_window(1 << 26, 254)

    def test_window_positive(self):
        assert optimal_cpu_window(1, 254) >= 2


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_gzkp_equals_naive_property(seed):
    rng = random.Random(seed)
    n = rng.randrange(1, 12)
    pts = [G.random_point(rng) for _ in range(n)]
    scs = [rng.randrange(G.order) for _ in range(n)]
    k = rng.randrange(3, 9)
    m = rng.randrange(1, 5)
    gz = GzkpMsm(G, L, V100, window=k, interval=m)
    assert gz.compute(scs, pts) == naive_msm(G, scs, pts)
