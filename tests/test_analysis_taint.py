"""Tests for the witness-taint analysis (rules R006–R009).

Three layers:

* fixture suites — each rule fires on a minimal positive and stays
  quiet on the sanitized/declassified negative, exercised through the
  public ``run_taint`` entry point on tiny synthetic ``repro.*``
  modules;
* suppression edge cases — ``# repro: allow[...]`` on decorator lines,
  inside multi-line statements, and on the line above a finding;
* the runtime mirror — telemetry export scrubs witness-like payloads,
  and the repo itself is clean at HEAD.
"""

import random
import textwrap
from pathlib import Path

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.lint import ModuleInfo
from repro.analysis.taint import TAINT_RULE_CODES, run_taint
from repro.circuits import CircuitBuilder
from repro.errors import CircuitError
from repro.ff import ALT_BN128_R
from repro.service.telemetry import SCRUBBED, Telemetry, scrub_payload

REPO_ROOT = Path(__file__).resolve().parents[1]


def _taint(tmp_path, source, sub="service", rules=None):
    """Run the taint engine over one synthetic ``repro.<sub>`` module."""
    pkg = tmp_path / "repro" / sub
    pkg.mkdir(parents=True, exist_ok=True)
    f = pkg / "fx.py"
    f.write_text(textwrap.dedent(source))
    return run_taint([str(f)], rules=rules)


def _codes(findings):
    return sorted({f.code for f in findings})


# -- R006: secret -> string sink ----------------------------------------------------


class TestR006StringSink:
    def test_fires_on_witness_in_exception_message(self, tmp_path):
        findings = _taint(tmp_path, """
            def check(witness):
                raise ValueError(f"bad witness {witness}")
        """)
        assert "R006" in _codes(findings)

    def test_quiet_when_only_shape_is_reported(self, tmp_path):
        findings = _taint(tmp_path, """
            def check(witness):
                raise ValueError(f"bad witness of length {len(witness)}")
        """)
        assert findings == []

    def test_fires_through_a_helper(self, tmp_path):
        findings = _taint(tmp_path, """
            def ident(x):
                return x

            def check(witness):
                raise ValueError(str(ident(witness)))
        """)
        assert "R006" in _codes(findings)


# -- R007: secret-dependent control flow in kernels ---------------------------------


class TestR007KernelControlFlow:
    SOURCE = """
        def reduce_once(witness):
            if witness > 17:
                return witness - 17
            return witness
    """

    def test_fires_inside_kernel_module(self, tmp_path):
        findings = _taint(tmp_path, self.SOURCE, sub="ff")
        assert "R007" in _codes(findings)

    def test_quiet_outside_kernel_modules(self, tmp_path):
        assert _taint(tmp_path, self.SOURCE, sub="service") == []

    def test_fires_on_secret_loop_bound(self, tmp_path):
        findings = _taint(tmp_path, """
            def spin(witness):
                acc = 0
                for _ in range(witness):
                    acc += 1
                return acc
        """, sub="msm")
        assert "R007" in _codes(findings)


# -- R008: secret container index/key ----------------------------------------------


class TestR008SecretIndex:
    def test_fires_on_secret_index(self, tmp_path):
        findings = _taint(tmp_path, """
            def lookup(witness, table):
                return table[witness]
        """)
        assert "R008" in _codes(findings)

    def test_quiet_on_shape_derived_index(self, tmp_path):
        findings = _taint(tmp_path, """
            def lookup(witness, table):
                return table[len(witness)]
        """)
        assert findings == []

    def test_fires_interprocedurally(self, tmp_path):
        findings = _taint(tmp_path, """
            def ident(x):
                return x

            def lookup(witness, table):
                return table[ident(witness)]
        """)
        assert "R008" in _codes(findings)


# -- R009: secret on a long-lived object --------------------------------------------


class TestR009LongLivedStore:
    def test_fires_on_long_lived_class_attribute(self, tmp_path):
        findings = _taint(tmp_path, """
            class ShardStats:
                def remember(self, witness):
                    self.last_witness = witness
        """)
        assert "R009" in _codes(findings)

    def test_quiet_on_job_scoped_class(self, tmp_path):
        findings = _taint(tmp_path, """
            class JobScratch:
                def remember(self, witness):
                    self.buffer = witness
        """)
        assert findings == []

    def test_fires_on_module_global(self, tmp_path):
        findings = _taint(tmp_path, """
            _CACHE = {}

            def stash(witness):
                global _CACHE
                _CACHE = witness
        """)
        assert "R009" in _codes(findings)


# -- escapes: declassify + rule selection -------------------------------------------


class TestEscapes:
    def test_declassify_is_a_boundary(self, tmp_path):
        findings = _taint(tmp_path, """
            from repro.analysis.declass import declassify

            @declassify("fixture: the return is public by construction")
            def mask(witness):
                return witness

            def lookup(witness, table):
                return table[mask(witness)]
        """)
        assert findings == []

    def test_rules_filter_restricts_codes(self, tmp_path):
        src = """
            def check(witness):
                raise ValueError(f"bad {witness}")
        """
        assert _taint(tmp_path, src, rules=["R007"]) == []
        assert "R006" in _codes(_taint(tmp_path, src, rules=["R006"]))


# -- suppression edge cases ---------------------------------------------------------


class TestSuppression:
    def test_allow_on_finding_line(self, tmp_path):
        findings = _taint(tmp_path, """
            def lookup(witness, table):
                return table[witness]  # repro: allow[R008]
        """)
        assert findings == []

    def test_allow_on_line_above(self, tmp_path):
        findings = _taint(tmp_path, """
            def lookup(witness, table):
                # repro: allow[R008]
                return table[witness]
        """)
        assert findings == []

    def test_allow_inside_multi_line_statement(self, tmp_path):
        findings = _taint(tmp_path, """
            def check(witness):
                raise ValueError(  # repro: allow[R006]
                    "prefix "
                    f"{witness}"
                )
        """)
        assert findings == []

    def test_wrong_code_does_not_suppress(self, tmp_path):
        findings = _taint(tmp_path, """
            def lookup(witness, table):
                return table[witness]  # repro: allow[R006]
        """)
        assert "R008" in _codes(findings)

    def test_decorator_line_span_covers_the_header_only(self):
        src = ("@decorator  # repro: allow[R007]\n"
               "def f(a,\n"
               "      b):\n"
               "    x = a\n")
        mi = ModuleInfo(Path("repro/ff/fx.py"), src)
        # the decorator's allow covers the whole def header...
        assert mi.suppressed("R007", 2)
        assert mi.suppressed("R007", 3)
        # ...but never leaks into the body
        assert not mi.suppressed("R007", 4)


# -- CLI ----------------------------------------------------------------------------


class TestCli:
    def _fixture(self, tmp_path):
        pkg = tmp_path / "repro" / "service"
        pkg.mkdir(parents=True)
        f = pkg / "fx.py"
        f.write_text("def check(witness):\n"
                     "    raise ValueError(f'bad {witness}')\n")
        return f

    def test_taint_subcommand_exits_nonzero_on_findings(self, tmp_path,
                                                        capsys):
        f = self._fixture(tmp_path)
        assert analysis_main(["taint", str(f)]) == 1
        assert "R006" in capsys.readouterr().out

    def test_list_rules_covers_the_taint_catalog(self, capsys):
        assert analysis_main(["taint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in TAINT_RULE_CODES:
            assert code in out

    def test_baseline_silences_known_findings_only(self, tmp_path,
                                                   capsys):
        f = self._fixture(tmp_path)
        report = tmp_path / "baseline.json"
        assert analysis_main(["taint", str(f), "--json",
                              str(report)]) == 1
        capsys.readouterr()
        # the same findings, baselined, no longer fail the run
        assert analysis_main(["taint", str(f), "--baseline",
                              str(report)]) == 0
        assert "baselined" in capsys.readouterr().out
        # a new finding still fails against the old baseline
        f.write_text(f.read_text() +
                     "\ndef lookup(witness, table):\n"
                     "    return table[witness]\n")
        assert analysis_main(["taint", str(f), "--baseline",
                              str(report)]) == 1


# -- the repo itself is clean at HEAD -----------------------------------------------


def test_repo_src_tree_is_taint_clean():
    findings = run_taint([str(REPO_ROOT / "src")])
    assert findings == [], "\n".join(f.render() for f in findings)


# -- satellite regressions: builder errors hide witness values ----------------------


class TestBuilderErrorHygiene:
    FIELD = ALT_BN128_R

    def test_boolean_witness_reports_index_not_value(self):
        b = CircuitBuilder(self.FIELD)
        secret = 123456789
        expected_index = b.r1cs.n_variables
        with pytest.raises(CircuitError) as ei:
            b.boolean_witness(secret)
        msg = str(ei.value)
        assert str(secret) not in msg
        assert str(expected_index) in msg

    def test_decompose_bits_reports_index_not_value(self):
        b = CircuitBuilder(self.FIELD)
        secret = 987654321
        var = b.witness(secret)
        with pytest.raises(CircuitError) as ei:
            b.decompose_bits(var, 8)
        msg = str(ei.value)
        assert str(secret) not in msg
        assert f"index {var}" in msg
        assert "8 bits" in msg


# -- satellite regressions: telemetry export scrubs witness payloads ----------------


def _values_in(obj):
    """Every scalar reachable in an exported telemetry dict."""
    if isinstance(obj, dict):
        for v in obj.values():
            yield from _values_in(v)
    elif isinstance(obj, (list, tuple)):
        for v in obj:
            yield from _values_in(v)
    else:
        yield obj


class TestTelemetryScrub:
    def test_scrub_payload_replaces_witness_like_keys(self):
        scrubbed = scrub_payload({
            "witness": [1, 2, 3],
            "full_assignment": [4, 5],
            "Trapdoor_dump": 7,
            "n_constraints": 9,
        })
        assert scrubbed == {
            "witness": SCRUBBED,
            "full_assignment": SCRUBBED,
            "Trapdoor_dump": SCRUBBED,
            "n_constraints": 9,
        }

    def test_span_meta_and_events_are_scrubbed_at_export(self):
        secrets = [1234567891011, 987654321]
        t = Telemetry()
        with t.span("prove", witness=list(secrets), size=2) as sp:
            # a caller mutating meta after the span opened is caught by
            # the export-time re-scrub
            sp.meta["assignment_tail"] = secrets[1]
            t.record_event("debug", witness_head=secrets[0], n=2)
        exported = t.to_dict()
        leaked = set(secrets) & set(
            v for v in _values_in(exported) if isinstance(v, int))
        assert not leaked
        assert exported["spans"][0]["meta"]["witness"] == SCRUBBED
        assert exported["spans"][0]["meta"]["size"] == 2
        assert exported["events"][0]["witness_head"] == SCRUBBED

    def test_proof_run_telemetry_never_exports_witness_ints(self):
        from repro.curves import CURVES
        from repro.snark import Groth16Prover, setup
        from repro.snark.r1cs import R1CS

        curve = CURVES["ALT-BN128"]
        r1cs = R1CS(field=curve.fr, n_public=2)
        x = r1cs.new_variable()
        y = r1cs.new_variable()
        r1cs.add_constraint({x: 1}, {y: 1}, {1: 1})
        r1cs.add_constraint({x: 1, y: 1}, {0: 1}, {2: 1})
        # witness values chosen large enough that no operational count
        # (sizes, window widths...) could collide with them
        wx, wy = 982451653, 961748927
        assignment = [1, (wx * wy) % curve.fr.modulus, wx + wy, wx, wy]
        keys = setup(r1cs, curve, random.Random(7))
        t = Telemetry()
        prover = Groth16Prover(r1cs, keys.proving_key, curve,
                               backend="python")
        prover.prove(assignment, rng=random.Random(11), telemetry=t)
        exported = t.to_dict()
        leaked = {wx, wy} & set(
            v for v in _values_in(exported) if isinstance(v, int))
        assert not leaked
