"""Tests for the GPU/CPU execution model: traces, devices, costs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import DFP_BACKEND, GTX1080TI, INT_BACKEND, V100, Trace, cost
from repro.gpusim.device import XEON_5117


class TestTrace:
    def test_counters(self):
        t = Trace()
        t.add_gpu_muls(381, 100, DFP_BACKEND)
        t.add_gpu_muls(381, 50, INT_BACKEND)
        t.add_gpu_adds(381, 30)
        assert t.total_gpu_muls() == 150
        assert t.gpu_adds[381] == 30

    def test_coalescing_accounting(self):
        t = Trace()
        t.add_global_traffic(1000, coalescing=0.25)
        assert t.global_bytes == 1000
        assert t.global_bytes_transferred == 4000
        assert t.coalescing_efficiency() == 0.25

    def test_bad_coalescing_rejected(self):
        t = Trace()
        with pytest.raises(ValueError):
            t.add_global_traffic(100, coalescing=0.0)
        with pytest.raises(ValueError):
            t.add_global_traffic(100, coalescing=1.5)

    def test_perfect_coalescing_default(self):
        t = Trace()
        assert t.coalescing_efficiency() == 1.0

    def test_merge_accumulates(self):
        a, b = Trace(), Trace()
        a.add_gpu_muls(255, 10, DFP_BACKEND)
        b.add_gpu_muls(255, 20, DFP_BACKEND)
        b.add_global_traffic(512)
        b.gpu_memory_bytes = 1000
        a.gpu_memory_bytes = 400
        a.merge(b)
        assert a.gpu_muls[(255, DFP_BACKEND)] == 30
        assert a.global_bytes == 512
        # Footprints overlap in time: max, not sum.
        assert a.gpu_memory_bytes == 1000

    def test_merge_weights_efficiency_by_muls(self):
        a, b = Trace(), Trace()
        a.add_gpu_muls(255, 100, DFP_BACKEND)
        a.parallel_efficiency = 1.0
        b.add_gpu_muls(255, 300, DFP_BACKEND)
        b.parallel_efficiency = 0.5
        a.merge(b)
        assert a.parallel_efficiency == pytest.approx(0.625)


class TestGpuDevice:
    def test_v100_specs_match_paper(self):
        # §3: 80 SMs, 48 KB shared memory per SM, 32 B L2 lines, 32 GB.
        assert V100.sm_count == 80
        assert V100.shared_mem_per_sm == 48 * 1024
        assert V100.l2_line_bytes == 32
        assert V100.global_mem_bytes == 32 * 2**30

    def test_rates_decrease_with_bit_width(self):
        for backend in (INT_BACKEND, DFP_BACKEND):
            r256 = V100.modmul_rate(254, backend)
            r381 = V100.modmul_rate(381, backend)
            r753 = V100.modmul_rate(753, backend)
            assert r256 > r381 > r753

    def test_dfp_faster_than_int(self):
        for bits in (254, 381, 753):
            assert V100.modmul_rate(bits, DFP_BACKEND) > (
                V100.modmul_rate(bits, INT_BACKEND)
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            V100.modmul_rate(254, "quantum")

    def test_1080ti_slower(self):
        for backend in (INT_BACKEND, DFP_BACKEND):
            assert GTX1080TI.modmul_rate(381, backend) < (
                V100.modmul_rate(381, backend)
            )
        assert GTX1080TI.mem_bandwidth < V100.mem_bandwidth
        assert GTX1080TI.global_mem_bytes < V100.global_mem_bytes

    def test_time_compute_memory_overlap(self):
        """Kernel time is max(compute, memory), not their sum."""
        t = Trace()
        t.add_gpu_muls(381, 1_000_000, DFP_BACKEND)
        compute_only = V100.time_of(t)
        t.add_global_traffic(1000)  # negligible memory
        assert V100.time_of(t) == pytest.approx(compute_only, rel=1e-6)

    def test_memory_bound_kernel(self):
        t = Trace()
        t.add_gpu_muls(381, 10, DFP_BACKEND)
        t.add_global_traffic(90e9)  # 0.1 s of bandwidth
        assert V100.time_of(t) == pytest.approx(0.1, rel=0.05)

    def test_block_overhead_visible(self):
        t = Trace()
        t.add_kernel(blocks=1_000_000, launches=1)
        assert V100.time_of(t) >= 1_000_000 * V100.block_sched_overhead

    def test_fits(self):
        t = Trace()
        t.gpu_memory_bytes = 33 * 2**30
        assert not V100.fits(t)
        assert not GTX1080TI.fits(t)
        t.gpu_memory_bytes = 8 * 2**30
        assert V100.fits(t)

    def test_bad_utilization_rejected(self):
        t = Trace()
        t.add_gpu_muls(254, 10, INT_BACKEND)
        t.parallel_efficiency = 0.0
        with pytest.raises(ValueError):
            V100.compute_time(t)


class TestCpuDevice:
    def test_paper_anchor_constants(self):
        # §1: 230 ns per 381-bit modmul, 43 ns per addition.
        assert XEON_5117.modmul_381_ns == 230.0
        assert XEON_5117.add_381_ns == 43.0

    def test_quadratic_mul_scaling(self):
        assert XEON_5117.modmul_ns(753) == pytest.approx(230 * 4, rel=0.01)
        assert XEON_5117.modmul_ns(254) == pytest.approx(
            230 * (4 / 6) ** 2, rel=0.01
        )

    def test_linear_add_scaling(self):
        assert XEON_5117.add_ns(753) == pytest.approx(86, rel=0.01)

    def test_parallel_vs_serial(self):
        t = Trace()
        t.add_cpu_muls(381, 10_000_000)
        par = XEON_5117.time_of(t, parallel=True)
        ser = XEON_5117.time_of(t, parallel=False)
        assert ser > 10 * par

    def test_dispatch_only_on_parallel(self):
        t = Trace()
        t.add_cpu_muls(381, 1)
        assert XEON_5117.time_of(t, parallel=False) < 1e-5
        assert XEON_5117.time_of(t, parallel=True) >= (
            cost.CPU_DISPATCH_OVERHEAD
        )


class TestCostHelpers:
    def test_chain_stall_decreases_with_width(self):
        assert cost.msm_chain_stall(254) > cost.msm_chain_stall(381)
        assert cost.msm_chain_stall(381) > cost.msm_chain_stall(753)
        assert cost.msm_chain_stall(753) > 1.0

    def test_cpu_msm_stall_decreases_with_width(self):
        assert cost.cpu_msm_stall(254) == pytest.approx(1.5)
        assert cost.cpu_msm_stall(753) < 1.2


@settings(max_examples=30, deadline=None)
@given(muls=st.integers(min_value=1, max_value=10**9),
       bits=st.sampled_from([254, 381, 753]))
def test_time_monotone_in_work_property(muls, bits):
    small, big = Trace(), Trace()
    small.add_gpu_muls(bits, muls, DFP_BACKEND)
    big.add_gpu_muls(bits, 2 * muls, DFP_BACKEND)
    assert V100.time_of(big) >= V100.time_of(small)
