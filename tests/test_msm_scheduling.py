"""Tests for digit statistics, workload grouping (Figure 6) and the
fine-grained task mapping (Figure 7), plus the MSM cost-model shapes."""

import random

import pytest

from repro.curves import bls12_381_g1, bn128_g1, mnt4753_g1
from repro.errors import GpuOutOfMemoryError, MsmError
from repro.gpusim import GTX1080TI, V100
from repro.gpusim.device import XEON_5117
from repro.msm import (
    CpuMsm,
    DigitStats,
    GzkpMsm,
    StrausMsm,
    SubMsmPippenger,
    bucket_histogram,
    group_tasks_by_load,
    map_tasks_to_warps,
    memory_curve,
    schedule_quality,
)


def sparse_scalars(n, seed=0, zero_frac=0.35, one_frac=0.35, bits=254):
    """A Zcash-like sparse scalar vector (§4.2: bound checks and range
    constraints introduce many 0s and 1s)."""
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        roll = rng.random()
        if roll < zero_frac:
            out.append(0)
        elif roll < zero_frac + one_frac:
            out.append(1)
        else:
            out.append(rng.getrandbits(bits))
    return out


class TestDigitStats:
    def test_dense_exact_vs_model(self):
        """The analytic dense model must track measured stats closely."""
        rng = random.Random(1)
        scalars = [rng.getrandbits(254) for _ in range(2000)]
        measured = DigitStats.of(scalars, 254, 8)
        model = DigitStats.dense_model(2000, 254, 8)
        assert measured.windows == model.windows
        assert measured.nonzero_digits == pytest.approx(
            model.nonzero_digits, rel=0.02
        )
        assert measured.nonzero_fraction == pytest.approx(
            model.nonzero_fraction, rel=0.02
        )

    def test_sparse_model_tracks_measured(self):
        scalars = sparse_scalars(4000, seed=2)
        measured = DigitStats.of(scalars, 254, 8)
        model = DigitStats.sparse_model(4000, 254, 8,
                                        zero_fraction=0.35, one_fraction=0.35)
        assert measured.nonzero_digits == pytest.approx(
            model.nonzero_digits, rel=0.1
        )
        # Bucket 1 dominates in both.
        assert measured.bucket_imbalance > 2.0
        assert model.bucket_imbalance > 2.0

    def test_window_imbalance_sparse(self):
        """Sparse vectors load window 0 disproportionately — the
        straggler effect that hurts window-parallel baselines."""
        stats = DigitStats.of(sparse_scalars(2000, seed=3), 254, 8)
        assert stats.window_imbalance > 1.3
        dense = DigitStats.of([random.Random(4).getrandbits(254)
                               for _ in range(2000)], 254, 8)
        assert dense.window_imbalance < 1.1

    def test_sparse_model_validates_fractions(self):
        with pytest.raises(MsmError):
            DigitStats.sparse_model(100, 254, 8, 0.7, 0.7)


class TestFigure6Histogram:
    def test_bucket_zero_excluded(self):
        hist = bucket_histogram([0, 0, 0], 254, 8)
        assert hist == {}

    def test_histogram_counts(self):
        # scalar 5 with k=4, 8 bits: digits [5, 0] -> bucket 5 once.
        hist = bucket_histogram([5, 5, 0x55], 8, 4)
        assert hist[5] == 4  # 5 -> one digit each; 0x55 -> two digits of 5

    def test_zcash_like_spread(self):
        """Figure 6: up to 2.85x spread across bucket loads at Zcash's
        scale/sparsity. The synthetic workload must reproduce a
        comparable spread."""
        scalars = sparse_scalars(1 << 12, seed=5, bits=254)
        hist = bucket_histogram(scalars, 254, 8)
        spread = max(hist.values()) / min(hist.values())
        assert spread > 2.0


class TestTaskGrouping:
    def _histogram(self):
        scalars = sparse_scalars(1 << 11, seed=6)
        return bucket_histogram(scalars, 254, 8)

    def test_groups_cover_all_buckets(self):
        hist = self._histogram()
        groups = group_tasks_by_load(hist, n_groups=8)
        covered = [b for g in groups for b in g.buckets]
        assert sorted(covered) == sorted(hist)

    def test_groups_ordered_heaviest_first(self):
        groups = group_tasks_by_load(self._histogram(), n_groups=8)
        means = [g.mean_load for g in groups]
        assert means == sorted(means, reverse=True)

    def test_similar_loads_within_group(self):
        hist = self._histogram()
        for g in group_tasks_by_load(hist, n_groups=8):
            loads = [hist[b] for b in g.buckets]
            assert max(loads) - min(loads) <= (g.hi - g.lo)

    def test_empty_histogram(self):
        assert group_tasks_by_load({}, n_groups=4) == []

    def test_bad_group_count(self):
        with pytest.raises(MsmError):
            group_tasks_by_load({1: 2}, n_groups=0)


class TestTaskMapping:
    def test_heavy_buckets_get_more_warps(self):
        hist = {1: 1000, 2: 100, 3: 110, 4: 95}
        groups = group_tasks_by_load(hist, n_groups=4)
        assignments = map_tasks_to_warps(groups, hist)
        by_bucket = {a.bucket: a.warps for a in assignments}
        assert by_bucket[1] > by_bucket[2]
        assert by_bucket[2] >= 1

    def test_mapping_improves_balance(self):
        """Proportional warp allocation must beat one-warp-per-task on a
        skewed histogram — the whole point of Figure 7."""
        hist = bucket_histogram(sparse_scalars(1 << 11, seed=7), 254, 8)
        groups = group_tasks_by_load(hist, n_groups=8)
        mapped = map_tasks_to_warps(groups, hist)
        naive = [type(a)(bucket=a.bucket, load=a.load, warps=1) for a in mapped]
        assert schedule_quality(mapped) > schedule_quality(naive)

    def test_quality_bounds(self):
        assert schedule_quality([]) == 1.0


class TestCostModelShapes:
    """The relative behaviours the evaluation section reports."""

    def test_gzkp_beats_bellperson_381(self):
        gz = GzkpMsm(bls12_381_g1, 255, V100)
        bp = SubMsmPippenger(bls12_381_g1, 255, V100)
        for lg in (18, 22, 26):
            n = 1 << lg
            ratio = bp.estimate_seconds(n, cpu_device=XEON_5117) / (
                gz.estimate_seconds(n)
            )
            # Table 7: 5.6x - 8.5x.
            assert 3.0 < ratio < 15.0

    def test_gzkp_beats_mina_753(self):
        gz = GzkpMsm(mnt4753_g1, 750, V100)
        mina = StrausMsm(mnt4753_g1, 750, V100)
        for lg in (16, 20, 22):
            n = 1 << lg
            ratio = mina.estimate_seconds(n) / gz.estimate_seconds(n)
            # Table 7: 9.2x - 12.4x.
            assert 5.0 < ratio < 20.0

    def test_mina_oom_beyond_2_22(self):
        """Figure 9 / Table 7: MINA fails above 2^22 at 753-bit."""
        mina = StrausMsm(mnt4753_g1, 750, V100)
        mina.estimate_seconds(1 << 22)  # fits
        with pytest.raises(GpuOutOfMemoryError):
            mina.estimate_seconds(1 << 24)

    def test_gzkp_scales_to_2_26_within_memory(self):
        gz = GzkpMsm(bls12_381_g1, 255, V100)
        trace = gz.plan(1 << 26)
        assert trace.gpu_memory_bytes < V100.global_mem_bytes

    def test_gzkp_memory_plateau(self):
        """Figure 9: GZKP-BLS memory stabilises beyond 2^22."""
        curve = memory_curve("gzkp", bls12_381_g1, 255, V100,
                             log_scales=[22, 24, 26])
        growth = curve[26] / curve[22]
        # 16x more data, < 3x more memory: the checkpoint table is
        # capped, only the unavoidable input vectors keep growing.
        assert growth < 3.0

    def test_mina_memory_steep(self):
        curve = memory_curve("mina", mnt4753_g1, 750, V100,
                             log_scales=[18, 22])
        assert curve[22] / curve[18] > 10

    def test_sparse_hurts_baselines_more_than_gzkp(self):
        """Tables 2/3's core story: on sparse real-world u, baselines
        lose much more than GZKP does (its LB keeps utilisation)."""
        n = 1 << 20
        dense = DigitStats.dense_model(n, 255, 10)
        sparse = DigitStats.sparse_model(n, 255, 10, 0.35, 0.35)
        bp = SubMsmPippenger(bls12_381_g1, 255, V100)
        bp_penalty = bp.device.time_of(bp.plan(n, sparse)) / (
            bp.device.time_of(bp.plan(n, dense))
        )
        # Sparse vectors have FAR fewer nonzero digits; a balanced system
        # gets faster, an imbalanced one stays stuck on the straggler.
        gz = GzkpMsm(bls12_381_g1, 255, V100, window=10)
        gz_sparse = gz.estimate_seconds(n, sparse)
        gz_dense = gz.estimate_seconds(n, dense)
        gz_penalty = gz_sparse / gz_dense
        assert gz_penalty < bp_penalty

    def test_no_lb_variant_slower_on_sparse(self):
        """Figure 10: load balancing is what rescues sparse inputs."""
        n = 1 << 20
        gz = GzkpMsm(bls12_381_g1, 255, V100, window=10)
        no_lb = GzkpMsm(bls12_381_g1, 255, V100, window=10,
                        load_balanced=False)
        sparse = DigitStats.sparse_model(n, 255, 10, 0.35, 0.35)
        assert no_lb.estimate_seconds(n, sparse) > gz.estimate_seconds(n, sparse)

    def test_1080ti_slower(self):
        gz_v = GzkpMsm(bls12_381_g1, 255, V100)
        gz_p = GzkpMsm(bls12_381_g1, 255, GTX1080TI)
        n = 1 << 20
        assert gz_p.estimate_seconds(n) > 2 * gz_v.estimate_seconds(n)

    def test_cpu_msm_much_slower_than_gzkp(self):
        cpu = CpuMsm(bn128_g1, 254, XEON_5117)
        gz = GzkpMsm(bn128_g1, 254, V100)
        n = 1 << 22
        # Table 7 256-bit: 18x - 33x.
        ratio = cpu.estimate_seconds(n) / gz.estimate_seconds(n)
        assert 10 < ratio < 60
