"""Tests for the extension features: multi-GPU MSM (Table 4's substrate)
and the throughput-oriented batched NTT (§7 future work)."""

import random

import pytest

from repro.curves import CURVES, bn128_g1
from repro.errors import MsmError, NttError
from repro.ff import ALT_BN128_R
from repro.gpusim import V100
from repro.msm import naive_msm
from repro.msm.multigpu import MultiGpuMsm
from repro.ntt import ntt
from repro.ntt.batched import BatchedNtt

F = ALT_BN128_R


class TestMultiGpuMsm:
    def _inputs(self, n, seed=0):
        rng = random.Random(seed)
        pts = [bn128_g1.random_point(rng) for _ in range(n)]
        scs = [rng.randrange(bn128_g1.order) for _ in range(n)]
        return scs, pts

    @pytest.mark.parametrize("n_gpus", [1, 2, 4])
    def test_matches_naive(self, n_gpus):
        scs, pts = self._inputs(21, seed=n_gpus)
        engine = MultiGpuMsm(bn128_g1, 254, V100, n_gpus=n_gpus,
                             window=5, interval=2)
        assert engine.compute(scs, pts) == naive_msm(bn128_g1, scs, pts)

    def test_partition_covers_everything(self):
        engine = MultiGpuMsm(bn128_g1, 254, V100, n_gpus=4)
        parts = engine.partition(10)
        covered = [i for p in parts for i in range(p.start, p.stop)]
        assert covered == list(range(10))
        sizes = [p.stop - p.start for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_and_validation(self):
        engine = MultiGpuMsm(bn128_g1, 254, V100, n_gpus=2, window=5,
                             interval=1)
        assert engine.compute([], []) is None
        with pytest.raises(MsmError):
            MultiGpuMsm(bn128_g1, 254, V100, n_gpus=0)

    def test_scaling_speedup(self):
        bls = CURVES["BLS12-381"]
        single = MultiGpuMsm(bls.g1, bls.fr.bits, V100, n_gpus=1)
        quad = MultiGpuMsm(bls.g1, bls.fr.bits, V100, n_gpus=4)
        n = 1 << 24
        gain = single.estimate_seconds(n) / quad.estimate_seconds(n)
        # Table 4: sub-linear but substantial scaling.
        assert 1.5 < gain < 4.0

    def test_small_inputs_scale_poorly(self):
        bls = CURVES["BLS12-381"]
        single = MultiGpuMsm(bls.g1, bls.fr.bits, V100, n_gpus=1)
        quad = MultiGpuMsm(bls.g1, bls.fr.bits, V100, n_gpus=4)
        small_gain = single.estimate_seconds(1 << 12) / (
            quad.estimate_seconds(1 << 12)
        )
        large_gain = single.estimate_seconds(1 << 24) / (
            quad.estimate_seconds(1 << 24)
        )
        assert large_gain > small_gain


class TestBatchedNtt:
    def test_functional_exact(self):
        rng = random.Random(1)
        batch = [[rng.randrange(F.modulus) for _ in range(64)]
                 for _ in range(5)]
        engine = BatchedNtt(F, V100)
        out = engine.compute(batch)
        assert out == [ntt(F, vec) for vec in batch]

    def test_inverse_roundtrip(self):
        rng = random.Random(2)
        batch = [[rng.randrange(F.modulus) for _ in range(32)]
                 for _ in range(3)]
        engine = BatchedNtt(F, V100)
        assert engine.compute_inverse(engine.compute(batch)) == [
            [v % F.modulus for v in vec] for vec in batch
        ]

    def test_mixed_sizes_rejected(self):
        engine = BatchedNtt(F, V100)
        with pytest.raises(NttError):
            engine.compute([[1, 2, 3, 4], [1, 2]])

    def test_empty_batch(self):
        assert BatchedNtt(F, V100).compute([]) == []

    def test_batching_improves_throughput(self):
        """§7's point: many small NTTs co-scheduled beat serial dispatch
        (which pays launch/scheduling per transform and cannot fill the
        device with a small N)."""
        bls = CURVES["BLS12-381"]
        engine = BatchedNtt(bls.fr, V100)
        n = 1 << 12  # HE-scale transform
        batched = engine.throughput_transforms_per_second(64, n)
        serial = engine.serial_throughput(n)
        assert batched > 1.5 * serial

    def test_large_transforms_gain_less(self):
        """A 2^24 transform already saturates the device: batching
        cannot help much (why ZKP runs latency-mode, §7)."""
        bls = CURVES["BLS12-381"]
        engine = BatchedNtt(bls.fr, V100)
        small_gain = (engine.throughput_transforms_per_second(64, 1 << 12)
                      / engine.serial_throughput(1 << 12))
        large_gain = (engine.throughput_transforms_per_second(8, 1 << 24)
                      / engine.serial_throughput(1 << 24))
        assert small_gain > large_gain
