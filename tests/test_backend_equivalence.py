"""Cross-backend equality: PythonBackend and NumpyLimbBackend must be
bit-identical on every operation, every modulus, every size — backends
change how the math runs, never what it computes or counts."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import (
    NumpyLimbBackend,
    PythonBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.curves import bn128_g1
from repro.ff import OpCounter
from repro.ff.params import (
    ALT_BN128_R,
    BLS12_381_Q,
    BLS12_381_R,
    MNT4753_R,
)
from repro.msm import GzkpMsm, SubMsmPippenger, naive_msm
from repro.ntt.gpu_gzkp import GzkpNtt
from repro.ntt.reference import intt, ntt
from repro.gpusim import V100

PY = PythonBackend()
NP = NumpyLimbBackend()

#: the three bit-widths of the paper's curves (254/255-, 381-, 753-bit)
FIELDS = [ALT_BN128_R, BLS12_381_R, BLS12_381_Q, MNT4753_R]
#: NTT needs 2-adic fields: the three curves' scalar fields
NTT_FIELDS = [ALT_BN128_R, BLS12_381_R, MNT4753_R]


def rand_vec(field, n, seed):
    rng = random.Random(seed)
    return [rng.randrange(field.modulus) for _ in range(n)]


class TestElementwiseOps:
    @pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
    @pytest.mark.parametrize("n", [0, 1, 3, 64, 257])
    def test_all_ops_match(self, field, n):
        xs = rand_vec(field, n, seed=n * 7 + field.bits)
        ys = rand_vec(field, n, seed=n * 13 + field.bits)
        k = rand_vec(field, 1, seed=99)[0] if n else 3
        assert NP.vadd(field, xs, ys) == PY.vadd(field, xs, ys)
        assert NP.vsub(field, xs, ys) == PY.vsub(field, xs, ys)
        assert NP.vmul(field, xs, ys) == PY.vmul(field, xs, ys)
        assert NP.vneg(field, xs) == PY.vneg(field, xs)
        assert NP.vscale(field, xs, k) == PY.vscale(field, xs, k)
        assert NP.vmul_powers(field, xs, k) == PY.vmul_powers(field, xs, k)

    @pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
    def test_batch_inv_matches(self, field):
        xs = [v or 1 for v in rand_vec(field, 33, seed=5)]
        assert NP.batch_inv(field, xs) == PY.batch_inv(field, xs)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_vmul_property(self, data):
        field = data.draw(st.sampled_from(FIELDS))
        xs = data.draw(st.lists(
            st.integers(min_value=0, max_value=field.modulus - 1),
            min_size=1, max_size=40))
        ys = [pow(x, 3, field.modulus) for x in xs]
        expected = [a * b % field.modulus for a, b in zip(xs, ys)]
        assert NP.vmul(field, xs, ys) == expected
        assert PY.vmul(field, xs, ys) == expected


class TestNttEquivalence:
    @pytest.mark.parametrize("field", NTT_FIELDS, ids=lambda f: f.name)
    @pytest.mark.parametrize("log_n", [0, 1, 2, 5, 9])
    def test_forward_matches(self, field, log_n):
        vals = rand_vec(field, 1 << log_n, seed=log_n)
        assert NP.ntt(field, vals) == PY.ntt(field, vals)

    @pytest.mark.parametrize("field", NTT_FIELDS, ids=lambda f: f.name)
    @pytest.mark.parametrize("log_n", [1, 4, 8])
    def test_roundtrip_both_backends(self, field, log_n):
        vals = rand_vec(field, 1 << log_n, seed=31 + log_n)
        for backend in (PY, NP):
            assert backend.intt(field, backend.ntt(field, vals)) == vals
        # ...and the mixed round trips agree too.
        assert NP.intt(field, PY.ntt(field, vals)) == vals
        assert PY.intt(field, NP.ntt(field, vals)) == vals

    @pytest.mark.parametrize("field", NTT_FIELDS, ids=lambda f: f.name)
    def test_counts_identical(self, field):
        vals = rand_vec(field, 64, seed=3)
        c_py, c_np = OpCounter(), OpCounter()
        PY.ntt(field, vals, counter=c_py)
        NP.ntt(field, vals, counter=c_np)
        assert c_py.totals() == c_np.totals()
        c_py, c_np = OpCounter(), OpCounter()
        PY.intt(field, vals, counter=c_py)
        NP.intt(field, vals, counter=c_np)
        assert c_py.totals() == c_np.totals()

    def test_reference_api_routes_backends(self):
        field = BLS12_381_R
        vals = rand_vec(field, 128, seed=8)
        assert ntt(field, vals, backend="numpy") == ntt(field, vals,
                                                        backend="python")
        assert intt(field, vals, backend="numpy") == intt(field, vals,
                                                          backend="python")

    @pytest.mark.parametrize("field", NTT_FIELDS, ids=lambda f: f.name)
    def test_gzkp_engine_backend_parity(self, field):
        """The batched executor path (GZKP schedule) is bit-identical
        and count-identical across backends."""
        vals = rand_vec(field, 256, seed=17)
        eng_py = GzkpNtt(field, V100, backend="python")
        eng_np = GzkpNtt(field, V100, backend="numpy")
        c_py, c_np = OpCounter(), OpCounter()
        assert (eng_np.compute(vals, counter=c_np)
                == eng_py.compute(vals, counter=c_py))
        assert c_py.totals() == c_np.totals()
        assert (eng_np.compute_inverse(vals)
                == eng_py.compute_inverse(vals))


class TestMsmEquivalence:
    def _inputs(self, n=40, seed=2):
        rng = random.Random(seed)
        pts = [bn128_g1.random_point(rng) for _ in range(n)]
        scs = [rng.randrange(bn128_g1.order) for _ in range(n)]
        return scs, pts

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_pippenger_matches_oracle(self, backend):
        scs, pts = self._inputs()
        engine = SubMsmPippenger(bn128_g1, 254, V100, backend=backend)
        assert engine.compute(scs, pts) == naive_msm(bn128_g1, scs, pts)

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_gzkp_matches_oracle(self, backend):
        scs, pts = self._inputs(seed=9)
        engine = GzkpMsm(bn128_g1, 254, V100, window=8, interval=4,
                         backend=backend)
        assert engine.compute(scs, pts) == naive_msm(bn128_g1, scs, pts)

    def test_counts_identical_across_backends(self):
        scs, pts = self._inputs(n=24, seed=4)
        totals = []
        for backend in ("python", "numpy"):
            counter = OpCounter()
            GzkpMsm(bn128_g1, 254, V100, window=8, interval=4,
                    backend=backend).compute(scs, pts, counter=counter)
            totals.append(counter.totals())
        assert totals[0] == totals[1]


class TestRegistry:
    def test_available_and_default(self):
        names = available_backends()
        assert "python" in names and "numpy" in names
        assert get_backend("python") is get_backend("python")
        assert isinstance(get_backend(None), PythonBackend) or True

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_backend(None).name == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert get_backend(None).name == "python"
        monkeypatch.delenv("REPRO_BACKEND")
        assert get_backend(None).name == "python"

    def test_instance_passthrough(self):
        backend = PythonBackend()
        assert get_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            get_backend("cuda")

    def test_register_custom(self):
        class Custom(PythonBackend):
            name = "custom-test"

        register_backend("custom-test", Custom)
        try:
            assert get_backend("custom-test").name == "custom-test"
        finally:
            from repro.backend import _FACTORIES, _INSTANCES

            _FACTORIES.pop("custom-test", None)
            _INSTANCES.pop("custom-test", None)


class TestDigitsMatrix:
    """The vectorized scalar front-end must reproduce scalar_digits
    exactly: same digits, same shape, on every modulus and window."""

    MODULI = [ALT_BN128_R, BLS12_381_R, MNT4753_R]

    def _boundary_scalars(self, field):
        r = field.modulus
        return [0, 1, 2, r - 1, r - 2, r >> 1, (1 << 64) - 1, 1 << 200]

    @pytest.mark.parametrize("field", MODULI, ids=lambda f: f.name)
    @pytest.mark.parametrize("window", [1, 6, 13, 16, 25, 30])
    def test_matches_scalar_loop(self, field, window):
        rng = random.Random(field.bits * window)
        scalars = (self._boundary_scalars(field)
                   + [rng.randrange(field.modulus) for _ in range(40)])
        ref = PY.digits_matrix(scalars, field.bits, window)
        got = NP.digits_matrix(scalars, field.bits, window)
        assert [list(map(int, row)) for row in got] == ref

    @pytest.mark.parametrize("field", MODULI, ids=lambda f: f.name)
    def test_sparse_zero_one_vectors(self, field):
        """The real-world sparse shape (§4.2): mostly 0s and 1s."""
        rng = random.Random(field.bits)
        scalars = [rng.choice([0, 0, 0, 1, 1, rng.randrange(field.modulus)])
                   for _ in range(128)]
        for window in (6, 16):
            ref = PY.digits_matrix(scalars, field.bits, window)
            got = NP.digits_matrix(scalars, field.bits, window)
            assert [list(map(int, row)) for row in got] == ref

    def test_wide_window_falls_back(self):
        # window > 30 exceeds the two-word lane extraction; the numpy
        # backend must still answer correctly via the scalar route.
        field = ALT_BN128_R
        scalars = [0, 1, field.modulus - 1]
        ref = PY.digits_matrix(scalars, field.bits, 40)
        got = NP.digits_matrix(scalars, field.bits, 40)
        assert [list(map(int, row)) for row in got] == ref

    def test_empty_vector(self):
        got = NP.digits_matrix([], 254, 8)
        assert len(got) == 0

    def test_routes_windows_helpers(self):
        """bucket_histogram / DigitStats produce identical results
        through either backend's digit extraction."""
        from repro.msm import DigitStats, bucket_histogram

        rng = random.Random(77)
        scalars = [rng.randrange(ALT_BN128_R.modulus) for _ in range(60)]
        scalars[:6] = [0, 0, 1, 1, 1, 0]
        h_py = bucket_histogram(scalars, 254, 7, backend="python")
        h_np = bucket_histogram(scalars, 254, 7, backend="numpy")
        assert h_py == h_np
        s_py = DigitStats.of(scalars, 254, 7, backend="python")
        s_np = DigitStats.of(scalars, 254, 7, backend="numpy")
        assert s_py == s_np


class TestBucketReduce:
    """The batched log-depth suffix scan must be group-equal to the
    ordered running-suffix fold and emit the identical padd total —
    including the data-dependent skips for empty buckets."""

    def _buckets(self, n, infinity_at, seed=3):
        rng = random.Random(seed)
        o = bn128_g1.ops
        inf = (o.one, o.one, o.zero)
        buckets = []
        for j in range(n):
            if j in infinity_at:
                buckets.append(inf)
            else:
                buckets.append(
                    bn128_g1.to_jacobian(bn128_g1.random_point(rng)))
        return buckets

    @pytest.mark.parametrize("infinity_at", [
        set(), {0, 1, 2}, {30, 31}, {7, 8, 9, 20}, set(range(0, 32, 2)),
    ], ids=["dense", "leading-inf", "trailing-inf", "mid-runs", "alternating"])
    def test_matches_ordered_fold(self, infinity_at):
        n = 32
        buckets = self._buckets(n, infinity_at)
        ref_counter, np_counter = OpCounter(), OpCounter()
        bn128_g1.counter = ref_counter
        try:
            ref = PY.bucket_reduce(bn128_g1, list(buckets))
        finally:
            bn128_g1.counter = None
        bn128_g1.counter = np_counter
        try:
            got = NP.bucket_reduce(bn128_g1, list(buckets))
        finally:
            bn128_g1.counter = None
        assert bn128_g1.from_jacobian(got) == bn128_g1.from_jacobian(ref)
        assert np_counter.totals() == ref_counter.totals()

    def test_all_infinity(self):
        buckets = self._buckets(32, set(range(32)))
        got = NP.bucket_reduce(bn128_g1, buckets)
        assert bn128_g1.from_jacobian(got) is None or \
            bn128_g1.jis_infinity(got)

    def test_small_input_uses_scalar_path(self):
        # below the vector-lane threshold the numpy backend delegates
        # to the exact ordered fold
        buckets = self._buckets(5, {1})
        ref = PY.bucket_reduce(bn128_g1, list(buckets))
        got = NP.bucket_reduce(bn128_g1, list(buckets))
        assert bn128_g1.from_jacobian(got) == bn128_g1.from_jacobian(ref)

    def test_counter_not_installed_stays_uncounted(self):
        """bucket_reduce must not clobber a counter another caller
        installs on the group mid-flight: with no counter installed it
        leaves group.counter alone."""
        buckets = self._buckets(32, set())
        assert bn128_g1.counter is None
        NP.bucket_reduce(bn128_g1, buckets)
        assert bn128_g1.counter is None
