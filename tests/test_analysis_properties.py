"""Property tests tying the certifier's claims back to the real
kernels: Dekker two-product exactness at boundary limbs, and the vmul
witnesses whose certified worst-case diagonal magnitude the real limb
pipeline reproduces bit-exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import certify_dfp, certify_numpy_limb
from repro.ff.dfp import DFP_BASE_BITS, DfpMultiplier, two_product
from repro.ff.params import SCALAR_FIELDS

LIMB_MAX = (1 << DFP_BASE_BITS) - 1
CURVES = sorted(SCALAR_FIELDS)

limbs = st.integers(min_value=0, max_value=LIMB_MAX)


@pytest.mark.parametrize("a", [0, 1, LIMB_MAX])
@pytest.mark.parametrize("b", [0, 1, LIMB_MAX])
def test_two_product_exact_at_boundaries(a, b):
    hi, lo = two_product(float(a), float(b))
    assert int(hi) + int(lo) == a * b


@given(a=limbs, b=limbs)
@settings(max_examples=300, deadline=None)
def test_two_product_exact_everywhere(a, b):
    hi, lo = two_product(float(a), float(b))
    assert int(hi) + int(lo) == a * b
    # the error term itself stays an exact-integer double, as certified
    assert abs(int(lo)) <= 1 << (2 * DFP_BASE_BITS - 53)


@pytest.mark.parametrize("curve", CURVES)
def test_dfp_witness_attains_certified_product(curve):
    field = SCALAR_FIELDS[curve]
    cert = certify_dfp(curve, field.modulus)
    w = cert.witnesses["two_product"]
    hi, lo = two_product(float(w["limb"]), float(w["limb"]))
    assert int(hi) + int(lo) == w["magnitude"]
    # witness magnitude sits within the certified product range bound
    assert w["magnitude"] <= cert.check("dfp/product").bound


@pytest.mark.parametrize("curve", CURVES)
def test_dfp_raw_mul_exact_on_extremes(curve):
    field = SCALAR_FIELDS[curve]
    mul = DfpMultiplier(field.modulus)
    for a in (0, 1, field.modulus - 1):
        for b in (1, field.modulus - 1):
            assert mul.mod_mul(a, b) == a * b % field.modulus


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_dfp_raw_mul_exact_random(data):
    curve = data.draw(st.sampled_from(CURVES))
    p = SCALAR_FIELDS[curve].modulus
    a = data.draw(st.integers(min_value=0, max_value=p - 1))
    b = data.draw(st.integers(min_value=0, max_value=p - 1))
    assert DfpMultiplier(p).mod_mul(a, b) == a * b % p


def _real_vmul_diagonals(modulus: int, value: int):
    """Replay the real backend's vmul accumulation (same dtype, same
    slice-add schedule) on one lane and return the diagonal vector the
    kernel hands to ``_wide_egress``."""
    np = pytest.importorskip("numpy")
    nl_mod = pytest.importorskip("repro.backend.numpy_limb")
    geom = nl_mod._geometry(modulus)
    a = nl_mod._ints_to_limbs(geom, [value])
    lg = geom.lg
    prod = np.zeros((1, 2 * lg - 1), dtype=np.float64)
    for j in range(lg):
        prod[:, j:j + lg] += a * a[:, j:j + 1]
    return prod[0]


@pytest.mark.parametrize("curve", CURVES)
def test_vmul_witness_attained_on_real_kernel(curve):
    """The certifier's adversarial vmul input drives the real float64
    pipeline to exactly the magnitude named in the certificate — and
    that magnitude stays under the 2^53 exactness ceiling."""
    field = SCALAR_FIELDS[curve]
    cert = certify_numpy_limb(curve, field.modulus)
    w = cert.witnesses["vmul"]
    diag = _real_vmul_diagonals(field.modulus, w["value"])
    peak = int(max(diag))
    assert float(peak) == max(diag)  # still an exact-integer double
    assert peak == w["magnitude"]
    assert peak <= cert.check("vmul/diagonal").bound < 1 << 53
    # and the full product emerges correct through the real egress
    be = pytest.importorskip("repro.backend.numpy_limb")
    if be.numpy_available():
        out = be.NumpyLimbBackend().vmul(field, [w["value"]], [w["value"]])
        assert out == [w["value"] * w["value"] % field.modulus]


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_vmul_diagonals_never_exceed_certified_bound(data):
    """Random canonical inputs stay at or below the certified worst
    case on every modulus."""
    curve = data.draw(st.sampled_from(CURVES))
    field = SCALAR_FIELDS[curve]
    cert = certify_numpy_limb(curve, field.modulus)
    bound = cert.check("vmul/diagonal").bound
    v = data.draw(st.integers(min_value=0, max_value=field.modulus - 1))
    diag = _real_vmul_diagonals(field.modulus, v)
    assert int(max(diag)) <= bound
