"""Tests for twiddle strategies (§5.3) and the parallel prefix-sum
bucket reduction (§4.1)."""

import math
import random

import pytest

from repro.curves import bn128_g1
from repro.errors import NttError
from repro.ff import ALT_BN128_R, MNT4753_R
from repro.msm import bucket_reduce
from repro.msm.prefix import parallel_bucket_reduce
from repro.ntt.twiddle import (
    FULL,
    RECOMPUTE,
    UNIQUE,
    TwiddleTable,
    strategy_stats,
)

F = ALT_BN128_R


class TestTwiddleTable:
    def test_values_match_direct_powers(self):
        n = 64
        table = TwiddleTable(F, n)
        omega = F.root_of_unity(n)
        for i in range(6):
            for j in range(1 << i):
                expected = pow(omega, j * (n >> (i + 1)), F.modulus)
                assert table.lookup(i, j) == expected

    def test_lookup_wraps_offset(self):
        table = TwiddleTable(F, 16)
        # Offsets are taken mod 2^i (the in-block butterfly index).
        assert table.lookup(2, 1) == table.lookup(2, 5)

    def test_storage_is_n(self):
        assert TwiddleTable(F, 256).storage_elements() == 256

    def test_bad_size(self):
        with pytest.raises(NttError):
            TwiddleTable(F, 24)

    def test_iteration_out_of_range(self):
        with pytest.raises(NttError):
            TwiddleTable(F, 16).lookup(4, 0)

    def test_ntt_with_table_matches_reference(self):
        """Drive the reference butterfly loop from the table."""
        from repro.ntt import bit_reverse_permute, ntt

        n = 128
        rng = random.Random(0)
        values = [rng.randrange(F.modulus) for _ in range(n)]
        table = TwiddleTable(F, n)
        a = list(values)
        bit_reverse_permute(a)
        p = F.modulus
        log_n = 7
        for i in range(log_n):
            half = 1 << i
            for start in range(0, n, 2 * half):
                for j in range(half):
                    w = table.lookup(i, j)
                    u = a[start + j]
                    v = a[start + j + half] * w % p
                    a[start + j] = (u + v) % p
                    a[start + j + half] = (u - v) % p
        assert a == ntt(F, values)


class TestStrategyStats:
    def test_paper_full_table_blowup(self):
        """§5.3: full precomputation at 2^24 is 16x the memory — for
        753-bit elements that is log N / 2 = 12x-16x the input vector,
        'up to 24 GB'."""
        n = 1 << 24
        elem = MNT4753_R.limbs64 * 8
        stats = strategy_stats(FULL, n, elem)
        assert stats["storage_vs_input"] == 12.0  # (N/2 * 24) / N
        assert stats["storage_bytes"] >= 18 * 2**30  # "up to 24 GB"

    def test_unique_table_linear(self):
        stats = strategy_stats(UNIQUE, 1 << 24, 32)
        assert stats["storage_vs_input"] == 1.0
        assert stats["extra_muls"] == 0

    def test_recompute_costs_muls_not_memory(self):
        n = 1 << 20
        stats = strategy_stats(RECOMPUTE, n, 96)
        assert stats["storage_bytes"] == 0
        assert stats["extra_muls"] == (n // 2) * 20


class TestParallelBucketReduce:
    def _buckets(self, m, seed=0):
        rng = random.Random(seed)
        return [
            bn128_g1.to_jacobian(bn128_g1.random_point(rng))
            for _ in range(m)
        ]

    @pytest.mark.parametrize("m", [1, 2, 3, 7, 8, 15, 16])
    def test_matches_serial(self, m):
        buckets = self._buckets(m, seed=m)
        serial = bucket_reduce(bn128_g1, buckets)
        parallel, _ = parallel_bucket_reduce(bn128_g1, buckets)
        assert bn128_g1.from_jacobian(parallel) == (
            bn128_g1.from_jacobian(serial)
        )

    def test_empty(self):
        result, profile = parallel_bucket_reduce(bn128_g1, [])
        assert bn128_g1.jis_infinity(result)
        assert profile.total_padds == 0

    def test_logarithmic_span(self):
        """The point of the scan: critical path O(log m), not O(m)."""
        for m in (16, 64, 256):
            _, profile = parallel_bucket_reduce(bn128_g1, self._buckets(m))
            assert profile.span_rounds <= 2 * math.ceil(math.log2(m)) + 2
            # The serial method's span IS its work: 2m PADDs.
            assert profile.span_rounds < 2 * m

    def test_work_bounded(self):
        m = 64
        _, profile = parallel_bucket_reduce(bn128_g1, self._buckets(m))
        # Hillis-Steele scan work is O(m log m); far below m^2.
        assert profile.total_padds <= m * (math.ceil(math.log2(m)) + 2)
