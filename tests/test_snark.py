"""Tests for the zkSNARK layer: R1CS, QAP, Groth16 setup/prove/verify."""

import random

import pytest

from repro.circuits import CircuitBuilder
from repro.curves import CURVES
from repro.errors import CircuitError, ProofError
from repro.ff import ALT_BN128_R
from repro.snark import (
    Groth16Prover,
    Groth16Verifier,
    R1CS,
    TrapdoorChecker,
    setup,
)

CURVE = CURVES["ALT-BN128"]
F = CURVE.fr


def product_circuit():
    """x * y = out (public), x + y = s (public)."""
    r1cs = R1CS(field=F, n_public=2)
    x = r1cs.new_variable()
    y = r1cs.new_variable()
    r1cs.add_constraint({x: 1}, {y: 1}, {1: 1})
    r1cs.add_constraint({x: 1, y: 1}, {0: 1}, {2: 1})
    assignment = [1, 6 * 7, 6 + 7, 6, 7]
    return r1cs, assignment


@pytest.fixture(scope="module")
def keys_and_circuit():
    r1cs, assignment = product_circuit()
    keys = setup(r1cs, CURVE, random.Random(42))
    return r1cs, assignment, keys


class TestR1CS:
    def test_satisfaction(self):
        r1cs, assignment = product_circuit()
        assert r1cs.is_satisfied(assignment)
        bad = list(assignment)
        bad[1] = 43
        assert not r1cs.is_satisfied(bad)

    def test_assignment_shape_checked(self):
        r1cs, assignment = product_circuit()
        with pytest.raises(CircuitError):
            r1cs.is_satisfied(assignment[:-1])
        with pytest.raises(CircuitError):
            r1cs.is_satisfied([0] + assignment[1:])

    def test_unknown_variable_rejected(self):
        r1cs = R1CS(field=F, n_public=0)
        with pytest.raises(CircuitError):
            r1cs.add_constraint({99: 1}, {0: 1}, {0: 1})

    def test_domain_size_power_of_two(self):
        r1cs, _ = product_circuit()
        assert r1cs.domain_size() == 2
        for _ in range(3):
            r1cs.add_constraint({0: 0}, {0: 0}, {0: 0})
        assert r1cs.domain_size() == 8

    def test_abc_evaluations(self):
        r1cs, assignment = product_circuit()
        a, b, c = r1cs.abc_evaluations(assignment)
        # Constraint 0: x * y = out.
        assert a[0] == 6 and b[0] == 7 and c[0] == 42
        # Constraint 1: (x + y) * 1 = s.
        assert a[1] == 13 and b[1] == 1 and c[1] == 13
        # Pointwise satisfaction on the domain.
        p = F.modulus
        assert all(ai * bi % p == ci for ai, bi, ci in zip(a, b, c))

    def test_lagrange_values_sum_to_one(self):
        """sum_i L_i(tau) = 1 for any tau (partition of unity)."""
        r1cs, _ = product_circuit()
        tau = 0xABCDEF
        lagrange = r1cs._lagrange_at(tau, 8)
        assert sum(lagrange) % F.modulus == 1

    def test_lagrange_on_domain_point(self):
        """L_i at a domain point omega^j is the Kronecker delta."""
        r1cs, _ = product_circuit()
        omega = F.root_of_unity(8)
        lagrange = r1cs._lagrange_at(pow(omega, 3, F.modulus), 8)
        assert lagrange[3] == 1
        assert all(v == 0 for i, v in enumerate(lagrange) if i != 3)

    def test_variable_polynomials_interpolate(self):
        """u_j(omega^i) must equal A_i[j] (column interpolation)."""
        r1cs, _ = product_circuit()
        omega = F.root_of_unity(r1cs.domain_size())
        x_var = 3
        u, v, w = r1cs.variable_polynomials_at(pow(omega, 0, F.modulus))
        assert u[x_var] == 1  # A_0[x] = 1
        u, v, w = r1cs.variable_polynomials_at(pow(omega, 1, F.modulus))
        assert u[x_var] == 1  # A_1[x] = 1
        assert v[x_var] == 0  # B_1[x] = 0


class TestSetup:
    def test_key_shapes(self, keys_and_circuit):
        r1cs, _, keys = keys_and_circuit
        pk, vk = keys.proving_key, keys.verifying_key
        assert len(pk.a_query) == r1cs.n_variables
        assert len(pk.b_g2_query) == r1cs.n_variables
        assert len(pk.c_query) == r1cs.n_variables - 1 - r1cs.n_public
        assert len(pk.h_query) == r1cs.domain_size() - 1
        assert len(vk.ic) == 1 + r1cs.n_public

    def test_key_points_on_curve(self, keys_and_circuit):
        _, _, keys = keys_and_circuit
        g1, g2 = CURVE.g1, CURVE.g2
        pk = keys.proving_key
        for p in pk.a_query + pk.b_g1_query + pk.c_query + pk.h_query:
            assert g1.is_on_curve(p)
        for p in pk.b_g2_query:
            assert g2.is_on_curve(p)

    def test_a_query_encodes_u_at_tau(self, keys_and_circuit):
        """White-box: a_query[j] must equal u_j(tau) * G1."""
        r1cs, _, keys = keys_and_circuit
        u, _, _ = r1cs.variable_polynomials_at(keys.trapdoor.tau)
        g1 = CURVE.g1
        for j, point in enumerate(keys.proving_key.a_query):
            assert point == g1.scalar_mul(u[j], g1.generator)

    def test_wrong_field_rejected(self):
        r1cs = R1CS(field=CURVES["BLS12-381"].fr, n_public=0)
        r1cs.add_constraint({0: 1}, {0: 1}, {0: 1})
        with pytest.raises(ProofError):
            setup(r1cs, CURVE, random.Random(0))


class TestProveVerify:
    def test_honest_proof_verifies(self, keys_and_circuit):
        r1cs, assignment, keys = keys_and_circuit
        prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
        proof = prover.prove(assignment, random.Random(1))
        verifier = Groth16Verifier(keys.verifying_key, CURVE)
        assert verifier.verify(proof, assignment[1:3])

    def test_unsatisfying_assignment_rejected_by_prover(self, keys_and_circuit):
        r1cs, assignment, keys = keys_and_circuit
        prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
        bad = list(assignment)
        bad[3] = 5  # x no longer matches
        with pytest.raises(ProofError):
            prover.prove(bad)

    def test_wrong_public_input_rejected(self, keys_and_circuit):
        r1cs, assignment, keys = keys_and_circuit
        prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
        proof = prover.prove(assignment, random.Random(2))
        verifier = Groth16Verifier(keys.verifying_key, CURVE)
        assert not verifier.verify(proof, [43, 13])

    def test_tampered_proof_rejected(self, keys_and_circuit):
        r1cs, assignment, keys = keys_and_circuit
        prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
        proof = prover.prove(assignment, random.Random(3))
        verifier = Groth16Verifier(keys.verifying_key, CURVE)
        g1 = CURVE.g1
        tampered = type(proof)(
            a=g1.add(proof.a, g1.generator), b=proof.b, c=proof.c
        )
        assert not verifier.verify(tampered, assignment[1:3])

    def test_off_curve_proof_rejected(self, keys_and_circuit):
        r1cs, assignment, keys = keys_and_circuit
        prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
        proof = prover.prove(assignment, random.Random(4))
        verifier = Groth16Verifier(keys.verifying_key, CURVE)
        fake = type(proof)(a=(1234, 5678), b=proof.b, c=proof.c)
        assert not verifier.verify(fake, assignment[1:3])

    def test_infinity_proof_rejected(self, keys_and_circuit):
        r1cs, assignment, keys = keys_and_circuit
        prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
        proof = prover.prove(assignment, random.Random(5))
        verifier = Groth16Verifier(keys.verifying_key, CURVE)
        assert not verifier.verify(
            type(proof)(a=None, b=proof.b, c=proof.c), assignment[1:3]
        )

    def test_zero_knowledge_randomisation(self, keys_and_circuit):
        """Two proofs of the same statement must differ (the r, s
        masks), yet both verify."""
        r1cs, assignment, keys = keys_and_circuit
        prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
        p1 = prover.prove(assignment, random.Random(6))
        p2 = prover.prove(assignment, random.Random(7))
        assert p1.a != p2.a and p1.c != p2.c
        verifier = Groth16Verifier(keys.verifying_key, CURVE)
        assert verifier.verify(p1, assignment[1:3])
        assert verifier.verify(p2, assignment[1:3])

    def test_wrong_public_count_raises(self, keys_and_circuit):
        r1cs, assignment, keys = keys_and_circuit
        prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
        proof = prover.prove(assignment, random.Random(8))
        verifier = Groth16Verifier(keys.verifying_key, CURVE)
        with pytest.raises(ProofError):
            verifier.verify(proof, [42])

    def test_proof_is_succinct(self, keys_and_circuit):
        r1cs, assignment, keys = keys_and_circuit
        prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
        proof = prover.prove(assignment, random.Random(9))
        # §2.1: proof sizes < 1 KB regardless of circuit complexity.
        assert proof.size_bytes(CURVE) < 1024


class TestTrapdoorChecker:
    def test_accepts_satisfying(self, keys_and_circuit):
        r1cs, assignment, keys = keys_and_circuit
        checker = TrapdoorChecker(r1cs, keys.trapdoor, CURVE)
        assert checker.qap_satisfied_at_tau(assignment)

    def test_rejects_unsatisfying(self, keys_and_circuit):
        r1cs, assignment, keys = keys_and_circuit
        checker = TrapdoorChecker(r1cs, keys.trapdoor, CURVE)
        bad = list(assignment)
        bad[3] = 999
        assert not checker.qap_satisfied_at_tau(bad)


class TestProverWithBuilder:
    def test_builder_circuit_roundtrip(self):
        builder = CircuitBuilder(F, n_public=1)
        a = builder.witness(9)
        cube = builder.pow_const(a, 3)
        pub = builder.set_public(builder.value(cube))
        builder.assert_equal(cube, pub)
        r1cs = builder.build()
        keys = setup(r1cs, CURVE, random.Random(10))
        prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
        proof = prover.prove(builder.assignment, random.Random(11))
        verifier = Groth16Verifier(keys.verifying_key, CURVE)
        assert verifier.verify(proof, [729])
        assert not verifier.verify(proof, [730])
