"""Tests for the async sharded pipeline: wire frames (no pickle on the
worker boundary), bounded-queue backpressure, shard affinity with warm
caches, verify modes, per-shard telemetry, and the seeded load
generator."""

import pickle
import time

import pytest

from repro.errors import ServiceOverloadedError, ValidationError
from repro.service import wire
from repro.service.loadgen import (LoadGenerator, burst_arrivals, percentile,
                                   poisson_arrivals, synthesize_jobs)
from repro.service.registry import CIRCUIT_REGISTRY, CircuitSpec, \
    register_circuit
from repro.service.service import ProofJob, ProvingService
from repro.service.shard import ShardMap, ShardStats
from repro.service.telemetry import splice_phase

BN = "ALT-BN128"


# -- wire frames: the zero-copy worker boundary -------------------------------------


class TestJobFrames:
    def test_job_frame_round_trip(self):
        request = wire.encode_request(BN, "square", (7,))
        data = wire.encode_job_frame(42, 3, "job-42", request)
        frame = wire.decode_job_frame(data)
        assert frame.ticket == 42
        assert frame.shard == 3
        assert frame.job_id == "job-42"
        # the embedded request is the caller's buffer, byte for byte
        assert frame.request == request
        req = wire.decode_request(frame.request)
        assert (req.curve, req.circuit, req.witness) == (BN, "square", (7,))

    def test_pickled_payload_rejected(self):
        # the acceptance criterion: a pickle can never cross the worker
        # boundary as a job
        payload = pickle.dumps({"curve": BN, "circuit": "square",
                                "witness": (7,)})
        with pytest.raises(ValidationError, match="magic"):
            wire.decode_job_frame(payload)
        with pytest.raises(ValidationError, match="pickled or foreign"):
            wire.frame_kind(payload)

    def test_truncated_job_frame_rejected(self):
        request = wire.encode_request(BN, "square", (7,))
        data = wire.encode_job_frame(1, 0, "j", request)
        with pytest.raises(ValidationError):
            wire.decode_job_frame(data[:-3])
        with pytest.raises(ValidationError, match="trailing"):
            wire.decode_job_frame(data + b"\x00")

    def test_result_frame_round_trip(self):
        result = {
            "ticket": 7, "ok": True, "verified": False, "worker": 2,
            "job_id": "job-7", "curve": BN, "circuit": "square",
            "backend": "python", "error": None, "error_kind": None,
            "public_inputs": (9, 1 << 200), "proof": b"\x01" * 33,
            "telemetry": {"spans": [], "events": [{"kind": "x",
                                                   "detail": "y"}]},
        }
        out = wire.decode_result_frame(wire.encode_result_frame(result))
        for key, value in result.items():
            assert out[key] == value, key

    def test_result_frame_error_round_trip(self):
        result = {"ticket": 1, "ok": False, "job_id": "j", "curve": BN,
                  "circuit": "nope", "error": "unknown circuit",
                  "error_kind": "validation"}
        out = wire.decode_result_frame(wire.encode_result_frame(result))
        assert out["ok"] is False
        assert out["error"] == "unknown circuit"
        assert out["error_kind"] == "validation"
        assert out["proof"] is None

    def test_control_frame_round_trip(self):
        data = wire.encode_control_frame(wire.OP_SHUTDOWN)
        assert wire.decode_control_frame(data) == wire.OP_SHUTDOWN
        assert wire.frame_kind(data) == wire.CONTROL_MAGIC

    def test_frame_reader_round_trip(self, tmp_path):
        import os

        r, w = os.pipe()
        frames = [wire.encode_control_frame(0),
                  wire.encode_job_frame(1, 0, "a", b"req")]
        for frame in frames:
            wire.write_frame(w, frame)
        os.close(w)
        reader = wire.FrameReader(r)
        got = [reader.next_frame(), reader.next_frame(),
               reader.next_frame()]
        os.close(r)
        assert got[0] == frames[0]
        assert got[1] == frames[1]
        assert got[2] is None   # EOF


# -- shard dispatch -----------------------------------------------------------------


class TestShardMap:
    def test_sticky_and_spread(self):
        smap = ShardMap(2)
        keys = [(BN, f"c{i}") for i in range(6)]
        shards = [smap.assign(k) for k in keys]
        # least-loaded placement alternates fresh keys across shards
        assert shards.count(0) == 3 and shards.count(1) == 3
        # sticky: re-assigning never moves a key
        assert [smap.assign(k) for k in keys] == shards
        assert sorted(len(smap.keys_for(s)) for s in (0, 1)) == [3, 3]

    def test_single_shard(self):
        smap = ShardMap(1)
        assert smap.assign((BN, "a")) == 0
        assert smap.assign((BN, "b")) == 0

    def test_stats_rollup(self):
        stats = ShardStats(0)
        stats.note_depth(3)
        stats.note_depth(1)
        stats.note_rejection()
        stats.note_result(True, 2.0, {"MSM": 1.5},
                          [{"kind": "prover-context-cache",
                            "detail": "miss"}])
        stats.note_result(False, 1.0, {"MSM": 0.5},
                          [{"kind": "prover-context-cache",
                            "detail": "hit"}])
        out = stats.to_dict()
        assert out["queue_depth_hwm"] == 3
        assert out["rejections"] == 1
        assert out["jobs"] == 2 and out["errors"] == 1
        assert out["context_cache"] == {"hits": 1, "misses": 1}
        assert out["phase_seconds"]["MSM"] == 2.0
        assert 0 < stats.retry_after(2) <= 2 * 2.0

    def test_retry_after_before_first_job(self):
        assert ShardStats(0).retry_after(3) == 3.0


def test_splice_phase_preserves_tiling():
    span = {"name": "job", "seconds": 1.0, "ops": {}, "meta": {},
            "children": [{"name": "MSM", "seconds": 0.9, "ops": {},
                          "meta": {}, "children": []}]}
    child = splice_phase(span, "verify", 0.5, stage="pool")
    assert child in span["children"]
    total = sum(c["seconds"] for c in span["children"])
    assert span["seconds"] == pytest.approx(1.5)
    assert 0.5 * span["seconds"] <= total <= 1.05 * span["seconds"]


# -- the pipeline under load --------------------------------------------------------


def _register_napper(name: str, naps: float) -> None:
    if name in CIRCUIT_REGISTRY:
        return
    square = CIRCUIT_REGISTRY["square"]

    def assign(field, witness):
        time.sleep(naps)
        return square.assign(field, witness)

    register_circuit(CircuitSpec(name, 1, square.build, assign,
                                 f"square with a {naps}s nap"))


class TestBackpressure:
    def test_bounded_queue_rejects_with_retry_after(self):
        _register_napper("napper", 0.5)
        with ProvingService(workers=1, parallel_msm=False,
                            queue_depth=1, verify="off") as svc:
            futures, overloads = [], []
            for i in range(6):
                try:
                    futures.append(svc.submit(
                        ProofJob(BN, "napper", (3,), "python"),
                        wait=False))
                except ServiceOverloadedError as exc:
                    overloads.append(exc)
            assert overloads, "a 1-deep queue never overloaded"
            exc = overloads[0]
            assert exc.shard == 0
            assert exc.depth >= 1
            assert exc.retry_after > 0
            assert "retry after" in str(exc)
            results = [f.result() for f in futures]
            assert all(r.ok for r in results)
            stats = svc.shard_stats()[0]
            assert stats["rejections"] == len(overloads)
            assert stats["queue_depth_hwm"] >= 1

    def test_wait_true_blocks_instead_of_rejecting(self):
        _register_napper("napper", 0.5)
        with ProvingService(workers=1, parallel_msm=False,
                            queue_depth=1, verify="off") as svc:
            futures = [svc.submit(ProofJob(BN, "napper", (3,), "python"),
                                  wait=True)
                       for _ in range(4)]
            assert all(f.result().ok for f in futures)
            assert svc.shard_stats()[0]["rejections"] == 0


class TestShardAffinity:
    def test_same_key_lands_on_same_shard_and_hits_warm_cache(self):
        jobs = [ProofJob(BN, circuit, (3,), "python")
                for circuit in ("square", "cubic")] * 2
        with ProvingService(workers=2, parallel_msm=False,
                            verify="off") as svc:
            results = svc.prove_batch(jobs)
            assert all(r.ok for r in results)
            # distinct keys spread over both shards...
            assert svc.shard_of(BN, "square") != svc.shard_of(BN, "cubic")
            by_circuit = {}
            for r in results:
                by_circuit.setdefault(r.circuit, set()).add(
                    (r.shard, r.worker))
            # ...and every job of a key ran on that key's single shard
            for circuit, placements in by_circuit.items():
                assert len(placements) == 1, (circuit, placements)
                ((shard, _worker),) = placements
                assert shard == svc.shard_of(BN, circuit)
            # round 2 of each key hit the warm prover-handle cache
            hits = [r for r in results
                    if any(e.get("kind") == "prover-context-cache"
                           and e.get("detail") == "hit"
                           for e in r.telemetry.get("events", []))]
            assert len(hits) == 2
            stats = svc.shard_stats()
            assert sum(s["context_cache"]["hits"] for s in stats) == 2
            assert sum(s["context_cache"]["misses"] for s in stats) == 2

    def test_worker_cache_bound_evicts(self):
        # 3 keys through a 1-deep handle cache on one worker: every
        # uniform revisit misses (the unbounded case would hit)
        circuits = ("square", "cubic", "range4")
        jobs = [ProofJob(BN, c, (3,), "python") for c in circuits] * 2
        with ProvingService(workers=1, parallel_msm=False, verify="off",
                            worker_cache=1) as svc:
            results = svc.prove_batch(jobs)
            assert all(r.ok for r in results)
            stats = svc.shard_stats()[0]["context_cache"]
            assert stats["hits"] == 0
            assert stats["misses"] == len(jobs)


class TestVerifyModes:
    def test_verify_off_skips_verification(self):
        with ProvingService(workers=1, parallel_msm=False,
                            verify="off") as svc:
            r = svc.prove_batch([ProofJob(BN, "square", (5,),
                                          "python")])[0]
            assert r.ok and not r.verified
            assert r.proof_bytes
            assert "verify" not in r.phase_seconds()

    def test_verify_pool_splices_span(self):
        with ProvingService(workers=1, parallel_msm=False,
                            verify="pool") as svc:
            r = svc.prove_batch([ProofJob(BN, "square", (5,),
                                          "python")])[0]
            assert r.ok and r.verified
            phases = r.phase_seconds()
            assert "verify" in phases
            # the spliced verify keeps phases tiling the job span
            total = sum(phases.values())
            wall = r.wall_seconds()
            assert 0.5 * wall <= total <= 1.05 * wall
            verify_meta = [c["meta"] for c in r.job_span["children"]
                           if c["name"] == "verify"]
            assert verify_meta == [{"stage": "pool"}]

    def test_verify_inline_runs_in_worker(self):
        with ProvingService(workers=1, parallel_msm=False,
                            verify="inline") as svc:
            r = svc.prove_batch([ProofJob(BN, "square", (5,),
                                          "python")])[0]
            assert r.ok and r.verified
            verify_meta = [c["meta"] for c in r.job_span["children"]
                           if c["name"] == "verify"]
            assert verify_meta == [{}]

    def test_verify_pool_catches_forged_proof(self):
        with ProvingService(workers=1, parallel_msm=False,
                            verify="pool") as svc:
            good = svc.prove_batch([ProofJob(BN, "square", (5,),
                                             "python")])[0]
            assert good.verified
            # same service, job whose worker-side result we corrupt:
            # exercise the parent verify path directly
            forged = svc._wrap({
                "job_id": "forged", "ok": True, "curve": BN,
                "circuit": "square", "proof": good.proof_bytes,
                "public_inputs": (int(good.public_inputs[0]) + 1,),
                "backend": "python",
                "telemetry": good.telemetry,
            }, 1)
            assert svc._verify_result(forged) is False

    def test_bad_verify_mode_rejected(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="verify"):
            ProvingService(workers=0, verify="sometimes")


class TestBatchedVerifyMode:
    """verify="batched": finished proofs are checked in RLC windows —
    N + 3 Miller loops and one final exponentiation per window."""

    def test_inline_window_telemetry(self):
        jobs = [ProofJob(BN, "square", (3 + i,), "python")
                for i in range(3)]
        with ProvingService(workers=0, parallel_msm=False,
                            verify="batched", verify_window=4,
                            verify_window_timeout=5.0) as svc:
            # window of 4 never fills with 3 jobs: prove_batch's
            # flush_verify() must close the partial window
            results = svc.prove_batch(jobs)
            assert all(r.ok and r.verified for r in results)
            for r in results:
                meta = [c["meta"] for c in r.job_span["children"]
                        if c["name"] == "verify"]
                assert len(meta) == 1
                assert meta[0]["stage"] == "batched"
                assert meta[0]["window"] == 3
                # one window of N=3: N + 3 Miller loops, 1 final exp
                assert meta[0]["miller_loops"] == 6
                assert meta[0]["final_exps"] == 1
                phases = r.phase_seconds()
                assert "verify" in phases
            stats = svc.shard_stats()
            assert stats[0]["jobs"] == 3

    def test_pooled_window_end_to_end(self):
        jobs = [ProofJob(BN, "square", (3 + i,), "python")
                for i in range(3)]
        with ProvingService(workers=1, parallel_msm=False,
                            verify="batched", verify_window=3,
                            verify_window_timeout=5.0) as svc:
            results = svc.prove_batch(jobs)
            assert all(r.ok and r.verified for r in results)
            meta = [c["meta"] for c in results[0].job_span["children"]
                    if c["name"] == "verify"]
            assert meta and meta[0]["stage"] == "batched"
            assert sum(s["jobs"] for s in svc.shard_stats()) == 3

    def test_window_timeout_flushes_trickle_submit(self):
        with ProvingService(workers=0, parallel_msm=False,
                            verify="batched", verify_window=8,
                            verify_window_timeout=0.2) as svc:
            future = svc.submit(ProofJob(BN, "square", (5,), "python"))
            r = future.result(timeout=30)
            assert r.ok and r.verified
            meta = [c["meta"] for c in r.job_span["children"]
                    if c["name"] == "verify"]
            assert meta[0]["window"] == 1
            assert svc._batch_stage.windows_timed_out >= 1

    def test_forged_proof_isolated_from_window_siblings(self):
        """One forged proof in a window: the window fails, bisection
        pinpoints the forgery, and the sibling jobs still verify."""
        with ProvingService(workers=0, parallel_msm=False,
                            verify="batched", verify_window=8,
                            verify_window_timeout=30.0) as svc:
            good = svc.prove_batch(
                [ProofJob(BN, "square", (5,), "python")])[0]
            assert good.verified

            def replay(job_id, publics):
                return svc._wrap({
                    "job_id": job_id, "ok": True, "curve": BN,
                    "circuit": "square", "proof": good.proof_bytes,
                    "public_inputs": publics, "backend": "python",
                    "telemetry": {},
                }, 1)

            window = [
                replay("sibling-1", tuple(good.public_inputs)),
                replay("forged", (int(good.public_inputs[0]) + 1,)),
                replay("sibling-2", tuple(good.public_inputs)),
            ]
            finished = {}
            for result in window:
                svc._batch_stage.add(
                    result, lambda res: finished.setdefault(res.job_id, res))
            svc._batch_stage.drain()
            assert finished["sibling-1"].verified
            assert finished["sibling-2"].verified
            assert not finished["forged"].ok
            assert finished["forged"].error_kind == "verify"

    def test_aggregate_verify_verdict(self):
        jobs = [ProofJob(BN, "square", (3 + i,), "python")
                for i in range(3)]
        with ProvingService(workers=0, parallel_msm=False,
                            verify="off") as svc:
            results = svc.prove_batch(jobs)
            assert all(r.ok and not r.verified for r in results)
            verdict = svc.aggregate_verify(results)
            assert verdict["ok"]
            assert verdict["bad_jobs"] == []
            assert verdict["proofs_checked"] == 3
            # one group window: N + 3 Miller loops, one final exp
            assert verdict["miller_loops"] == 6
            assert verdict["final_exps"] == 1
            # corrupt one job's public input: verdict flips, the
            # offender is named, siblings are not
            results[1].public_inputs = (
                int(results[1].public_inputs[0]) + 1,)
            verdict = svc.aggregate_verify(results)
            assert not verdict["ok"]
            assert verdict["bad_jobs"] == [results[1].job_id]

    def test_bad_window_knobs_rejected(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="verify_window"):
            ProvingService(workers=0, verify="batched", verify_window=0)
        with pytest.raises(ServiceError, match="verify_window_timeout"):
            ProvingService(workers=0, verify="batched",
                           verify_window_timeout=0.0)
        with pytest.raises(ServiceError, match="soundness_bits"):
            ProvingService(workers=0, verify="batched", soundness_bits=0)


class TestPerShardTelemetry:
    def test_pooled_stats_export(self):
        jobs = [ProofJob(BN, c, (3,), "python")
                for c in ("square", "cubic", "square", "cubic")]
        with ProvingService(workers=2, parallel_msm=False,
                            verify="off") as svc:
            assert all(r.ok for r in svc.prove_batch(jobs))
            stats = svc.shard_stats()
        assert [s["shard"] for s in stats] == [0, 1]
        for s in stats:
            assert s["jobs"] == 2
            assert s["queue_depth_hwm"] >= 1
            assert s["ewma_job_seconds"] > 0
            assert "MSM" in s["phase_seconds"]
            assert s["context_cache"]["hits"] + \
                s["context_cache"]["misses"] == 2

    def test_inline_stats_export(self):
        with ProvingService(workers=0, parallel_msm=False) as svc:
            svc.prove_batch([ProofJob(BN, "square", (3,), "python")])
            stats = svc.shard_stats()
        assert len(stats) == 1
        assert stats[0]["jobs"] == 1
        assert stats[0]["context_cache"]["misses"] == 1


# -- load generation ----------------------------------------------------------------


class TestArrivals:
    def test_poisson_deterministic(self):
        a = poisson_arrivals(10.0, 50, seed=7)
        b = poisson_arrivals(10.0, 50, seed=7)
        c = poisson_arrivals(10.0, 50, seed=8)
        assert a == b
        assert a != c
        assert len(a) == 50
        assert all(y > x for x, y in zip(a, a[1:]))
        # mean inter-arrival ~ 1/rate
        assert 0.03 < a[-1] / 50 < 0.3

    def test_burst_shape(self):
        offsets = burst_arrivals(6, 3, 1.5)
        assert offsets == [0.0, 0.0, 0.0, 1.5, 1.5, 1.5]

    def test_synthesize_jobs_deterministic(self):
        keys = [(BN, "square"), (BN, "cubic")]
        a = synthesize_jobs(keys, 20, seed=3, backend="python")
        b = synthesize_jobs(keys, 20, seed=3, backend="python")
        assert [(j.circuit, j.witness, j.job_id) for j in a] == \
            [(j.circuit, j.witness, j.job_id) for j in b]
        assert {j.circuit for j in a} == {"square", "cubic"}
        assert all(j.backend == "python" for j in a)

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100
        assert percentile([], 50) == 0.0
        assert percentile([4.2], 99) == 4.2


class TestLoadGeneratorRoundTrip:
    def test_seeded_run_against_inline_service(self):
        keys = [(BN, "square"), (BN, "cubic")]
        jobs = synthesize_jobs(keys, 6, seed=11, backend="python")
        offsets = poisson_arrivals(50.0, 6, seed=11)
        with ProvingService(workers=0, parallel_msm=False) as svc:
            report = LoadGenerator(svc).run(jobs, offsets,
                                            arrival_mode="poisson")
        out = report.to_dict()
        assert out["jobs"] == 6
        assert out["ok"] == 6 and out["errors"] == 0
        assert out["dropped"] == 0
        assert out["jobs_per_second"] > 0
        lat = out["latency_seconds"]
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]
        assert len(out["per_shard"]) == 1

    def test_burst_run_exercises_backpressure(self):
        _register_napper("napper", 0.5)
        jobs = [ProofJob(BN, "napper", (3,), "python",
                         f"burst-{i}") for i in range(5)]
        offsets = burst_arrivals(5, 5, 0.0)
        with ProvingService(workers=1, parallel_msm=False,
                            queue_depth=1, verify="off") as svc:
            report = LoadGenerator(svc).run(jobs, offsets,
                                            arrival_mode="burst")
        assert report.ok == 5
        assert report.dropped == 0
        # a 5-job burst into a 1-deep queue must have been pushed back
        assert report.rejections >= 1
