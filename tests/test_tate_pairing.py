"""Tests for the MNT4753-surrogate Tate pairing (the 753-bit curve's
real verification substrate)."""

import pytest

from repro.curves import mnt4753_g1, mnt4753_g2_ready, mnt4753_pairing
from repro.errors import CurveError


@pytest.fixture(scope="module")
def engine():
    return mnt4753_pairing()


@pytest.fixture(scope="module")
def base(engine):
    g2 = mnt4753_g2_ready()
    e = engine.pairing(mnt4753_g1.generator, g2.generator)
    return g2, e


class TestTatePairing:
    def test_non_degenerate(self, engine, base):
        _, e = base
        assert e != engine.field.one

    def test_value_in_mu_r(self, engine, base):
        """The reduced pairing lands in the order-r subgroup of Fq2*."""
        _, e = base
        assert e ** engine.r == engine.field.one

    def test_bilinear_left(self, engine, base):
        g2, e = base
        p2 = mnt4753_g1.scalar_mul(2, mnt4753_g1.generator)
        assert engine.pairing(p2, g2.generator) == e * e

    def test_bilinear_right(self, engine, base):
        g2, e = base
        q3 = g2.scalar_mul(3, g2.generator)
        assert engine.pairing(mnt4753_g1.generator, q3) == e ** 3

    def test_bilinear_both(self, engine, base):
        g2, e = base
        p5 = mnt4753_g1.scalar_mul(5, mnt4753_g1.generator)
        q2 = g2.scalar_mul(2, g2.generator)
        assert engine.pairing(p5, q2) == e ** 10

    def test_negation_inverts(self, engine, base):
        g2, e = base
        pneg = mnt4753_g1.neg(mnt4753_g1.generator)
        assert engine.pairing(pneg, g2.generator) == e.inverse()

    def test_infinity_maps_to_one(self, engine, base):
        g2, _ = base
        assert engine.pairing(None, g2.generator) == engine.field.one
        assert engine.pairing(mnt4753_g1.generator, None) == engine.field.one

    def test_product_check(self, engine, base):
        g2, _ = base
        pairs = [
            (mnt4753_g1.generator, g2.generator),
            (mnt4753_g1.neg(mnt4753_g1.generator), g2.generator),
        ]
        assert engine.pairing_product_is_one(pairs)
        bad = [
            (mnt4753_g1.generator, g2.generator),
            (mnt4753_g1.generator, g2.generator),
        ]
        assert not engine.pairing_product_is_one(bad)

    def test_miller_loop_rejects_equal_points(self, engine):
        embedded = engine.embed_g1(mnt4753_g1.generator)
        with pytest.raises(CurveError):
            engine.miller_loop(embedded, embedded)

    def test_engine_cached(self):
        from repro.curves.tate import mnt4753_pairing as factory

        assert factory() is factory()
