"""Tests for the exception hierarchy and error reporting."""

import pytest

from repro.errors import (
    CircuitError,
    CurveError,
    FieldError,
    GpuOutOfMemoryError,
    MsmError,
    NttError,
    ProofError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        FieldError, CurveError, NttError, MsmError, CircuitError,
        ProofError, SimulationError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_oom_is_simulation_error(self):
        assert issubclass(GpuOutOfMemoryError, SimulationError)


class TestOomReporting:
    def test_message_carries_sizes(self):
        err = GpuOutOfMemoryError(64 * 2**30, 32 * 2**30,
                                  detail="Straus table")
        assert err.required_bytes == 64 * 2**30
        assert err.available_bytes == 32 * 2**30
        message = str(err)
        assert "64.00 GiB" in message
        assert "32.00 GiB" in message
        assert "Straus table" in message

    def test_detail_optional(self):
        err = GpuOutOfMemoryError(2**30, 2**29)
        assert "GiB" in str(err)

    def test_catchable_as_library_error(self):
        with pytest.raises(ReproError):
            raise GpuOutOfMemoryError(1, 0)
