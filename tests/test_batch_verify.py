"""Tests for batch verification (random-linear-combination batching)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import CURVES
from repro.errors import ProofError
from repro.snark import (
    BatchVerifier,
    Groth16Prover,
    Groth16Verifier,
    R1CS,
    setup,
)

CURVE = CURVES["ALT-BN128"]
F = CURVE.fr


@pytest.fixture(scope="module")
def batch_setup():
    """One circuit, several proofs over different witnesses."""
    r1cs = R1CS(field=F, n_public=1)
    x = r1cs.new_variable()
    r1cs.add_constraint({x: 1}, {x: 1}, {1: 1})  # x^2 = public
    keys = setup(r1cs, CURVE, random.Random(55))
    prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
    proofs, publics = [], []
    for i, x_val in enumerate((3, 11, 254)):
        assignment = [1, x_val * x_val % F.modulus, x_val]
        proofs.append(prover.prove(assignment, random.Random(100 + i)))
        publics.append([x_val * x_val % F.modulus])
    return keys, proofs, publics


class TestBatchVerifier:
    def test_all_valid_batch_accepts(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        assert batch.verify_batch(proofs, publics, random.Random(1))

    def test_single_bad_proof_fails_batch(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        g1 = CURVE.g1
        tampered = list(proofs)
        tampered[1] = type(proofs[1])(
            a=g1.add(proofs[1].a, g1.generator), b=proofs[1].b, c=proofs[1].c
        )
        assert not batch.verify_batch(tampered, publics, random.Random(2))

    def test_wrong_public_input_fails_batch(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        bad = [list(p) for p in publics]
        bad[0][0] = (bad[0][0] + 1) % F.modulus
        assert not batch.verify_batch(proofs, bad, random.Random(3))

    def test_empty_batch_accepts(self, batch_setup):
        keys, _, _ = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        assert batch.verify_batch([], [], random.Random(4))

    def test_length_mismatch_raises(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        with pytest.raises(ProofError):
            batch.verify_batch(proofs, publics[:-1], random.Random(5))

    def test_infinity_proof_rejected(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        broken = list(proofs)
        broken[0] = type(proofs[0])(a=None, b=proofs[0].b, c=proofs[0].c)
        assert not batch.verify_batch(broken, publics, random.Random(6))

    def test_agrees_with_single_verification(self, batch_setup):
        keys, proofs, publics = batch_setup
        single = Groth16Verifier(keys.verifying_key, CURVE)
        for proof, inputs in zip(proofs, publics):
            assert single.verify(proof, inputs)


# -- one-Miller-loop-per-proof batching ----------------------------------------------


class _RiggedRng:
    """Deterministic rng stub: returns a fixed value, recording the
    (lo, hi) bounds every randrange call asked for."""

    def __init__(self, value):
        self.value = value
        self.calls = []

    def randrange(self, lo, hi=None):
        self.calls.append((lo, hi))
        return self.value


class TestCoefficientDraws:
    def test_zero_coefficient_never_drawn(self, batch_setup):
        """Regression: a zero r_i silently excludes its proof from the
        check, so the draw's lower bound must be 1 — even when the rng
        always answers with the lowest allowed value."""
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        rng = _RiggedRng(1)
        coeffs = batch.draw_coefficients(len(proofs), rng)
        assert all(c == 1 for c in coeffs)
        assert all(lo == 1 for lo, _ in rng.calls)

    def test_soundness_bits_size_the_draw(self, batch_setup):
        keys, _, _ = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE, soundness_bits=8)
        rng = _RiggedRng(200)
        batch.draw_coefficients(5, rng)
        assert rng.calls == [(1, 256)] * 5

    def test_draw_clamped_to_scalar_field(self, batch_setup):
        """soundness_bits wider than the field cannot draw out of
        range."""
        keys, _, _ = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE,
                              soundness_bits=4096)
        rng = _RiggedRng(1)
        batch.draw_coefficients(1, rng)
        assert rng.calls == [(1, F.modulus)]

    def test_bad_soundness_bits_rejected(self, batch_setup):
        keys, _, _ = batch_setup
        with pytest.raises(ProofError):
            BatchVerifier(keys.verifying_key, CURVE, soundness_bits=0)


class TestPairingEconomics:
    def test_engine_memoized_per_curve(self):
        from repro.snark.verifier import pairing_engine_for

        assert pairing_engine_for(CURVE) is pairing_engine_for(CURVE)

    def test_ic_combination_matches_naive_loop(self, batch_setup):
        keys, _, publics = batch_setup
        verifier = Groth16Verifier(keys.verifying_key, CURVE)
        vk = keys.verifying_key
        g1 = CURVE.g1
        for inputs in publics:
            naive = vk.ic[0]
            for x, point in zip(inputs, vk.ic[1:]):
                naive = g1.add(naive, g1.scalar_mul(x, point))
            assert verifier.ic_combination(inputs) == naive

    def test_batch_of_32_runs_35_miller_loops(self, batch_setup):
        """The tentpole claim, machine-checked: N + 3 Miller loops and
        exactly one final exponentiation for N = 32."""
        from repro.ff.opcount import OpCounter

        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        tiled_p = [proofs[i % len(proofs)] for i in range(32)]
        tiled_x = [publics[i % len(publics)] for i in range(32)]
        counter = OpCounter()
        assert batch.verify_batch(tiled_p, tiled_x, random.Random(9),
                                  counter=counter)
        assert counter.total("miller_loop") == 35
        assert counter.total("final_exp") == 1
        # the three fixed-argument precomputations build at most once
        assert counter.total("g2_precomp") <= 3

    def test_precomputation_reused_across_batches(self, batch_setup):
        from repro.ff.opcount import OpCounter

        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        assert batch.verify_batch(proofs, publics, random.Random(10))
        counter = OpCounter()
        assert batch.verify_batch(proofs, publics, random.Random(11),
                                  counter=counter)
        assert counter.total("g2_precomp") == 0
        assert counter.total("miller_loop") == len(proofs) + 3

    def test_fresh_verifier_shares_engine_precomputation(self, batch_setup):
        """Two BatchVerifier instances over the same key share the
        memoized engine, so the second one's first batch pays no
        g2_precomp either."""
        from repro.ff.opcount import OpCounter

        keys, proofs, publics = batch_setup
        first = BatchVerifier(keys.verifying_key, CURVE)
        assert first.verify_batch(proofs, publics, random.Random(12))
        second = BatchVerifier(keys.verifying_key, CURVE)
        counter = OpCounter()
        assert second.verify_batch(proofs, publics, random.Random(13),
                                   counter=counter)
        assert counter.total("g2_precomp") == 0


class TestCancellationAttack:
    """Correlated batch coefficients are the classic RLC failure mode:
    tamper C_1 by +P and C_2 by -P and the perturbations cancel in the
    C fold whenever r_1 == r_2.  Independent draws must still catch
    it."""

    @staticmethod
    def _tampered_pair(proofs):
        g1 = CURVE.g1
        perturb = g1.generator
        tampered = list(proofs)
        tampered[0] = type(proofs[0])(
            a=proofs[0].a, b=proofs[0].b,
            c=g1.add(proofs[0].c, perturb))
        tampered[1] = type(proofs[1])(
            a=proofs[1].a, b=proofs[1].b,
            c=g1.add(proofs[1].c, g1.neg(perturb)))
        return tampered

    def test_equal_coefficients_miss_the_tampering(self, batch_setup):
        """Sanity check that the attack is real: with rigged equal
        coefficients the tampered batch *passes* — this is why the
        coefficients must be drawn independently per proof."""
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        tampered = self._tampered_pair(proofs)
        assert batch.verify_batch(tampered, publics, _RiggedRng(7))

    def test_independent_coefficients_catch_the_tampering(self,
                                                          batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        tampered = self._tampered_pair(proofs)
        for seed in (21, 22, 23):
            assert not batch.verify_batch(tampered, publics,
                                          random.Random(seed))


class TestWindowBisection:
    def test_clean_window(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        assert batch.verify_window(proofs, publics,
                                   random.Random(31)) == (True, [])

    def test_window_pinpoints_bad_proof(self, batch_setup):
        """One forged proof among siblings: the window fails, bisection
        names exactly the offender, the siblings are not accused."""
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        g1 = CURVE.g1
        tampered = list(proofs)
        tampered[1] = type(proofs[1])(
            a=g1.add(proofs[1].a, g1.generator), b=proofs[1].b,
            c=proofs[1].c)
        ok, bad = batch.verify_window(tampered, publics, random.Random(32))
        assert not ok
        assert bad == [1]

    def test_window_length_mismatch_raises(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        with pytest.raises(ProofError):
            batch.verify_window(proofs, publics[:-1], random.Random(33))


class TestBatchSizesFuzz:
    """Hypothesis fuzz across the awkward batch sizes: empty, single,
    pair, and one crossing the default window multiple."""

    @given(n=st.sampled_from([0, 1, 2, 33]),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=4, deadline=None)
    def test_tiled_batches_verify(self, batch_setup, n, seed):
        from repro.ff.opcount import OpCounter

        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        tiled_p = [proofs[i % len(proofs)] for i in range(n)]
        tiled_x = [publics[i % len(publics)] for i in range(n)]
        counter = OpCounter()
        assert batch.verify_batch(tiled_p, tiled_x, random.Random(seed),
                                  counter=counter)
        if n:
            assert counter.total("miller_loop") == n + 3
            assert counter.total("final_exp") == 1
        else:
            assert counter.total("miller_loop") == 0
            assert counter.total("final_exp") == 0


@pytest.mark.slow
class TestMnt4753Batch:
    """The Tate engine (swapped-orientation fixed-argument loop) agrees
    with per-proof verification on the 753-bit surrogate."""

    @pytest.fixture(scope="class")
    def mnt_setup(self):
        from repro.curves import CURVES

        curve = CURVES["MNT4753"]
        f = curve.fr
        r1cs = R1CS(field=f, n_public=1)
        x = r1cs.new_variable()
        r1cs.add_constraint({x: 1}, {x: 1}, {1: 1})
        keys = setup(r1cs, curve, random.Random(77))
        prover = Groth16Prover(r1cs, keys.proving_key, curve)
        proofs, publics = [], []
        for i, x_val in enumerate((5, 19)):
            assignment = [1, x_val * x_val % f.modulus, x_val]
            proofs.append(prover.prove(assignment, random.Random(300 + i)))
            publics.append([x_val * x_val % f.modulus])
        return curve, keys, proofs, publics

    def test_batch_matches_single(self, mnt_setup):
        from repro.ff.opcount import OpCounter

        curve, keys, proofs, publics = mnt_setup
        single = Groth16Verifier(keys.verifying_key, curve)
        for proof, inputs in zip(proofs, publics):
            assert single.verify(proof, inputs)
        batch = BatchVerifier(keys.verifying_key, curve)
        counter = OpCounter()
        assert batch.verify_batch(proofs, publics, random.Random(41),
                                  counter=counter)
        assert counter.total("miller_loop") == len(proofs) + 3
        assert counter.total("final_exp") == 1

    def test_batch_rejects_tampering(self, mnt_setup):
        curve, keys, proofs, publics = mnt_setup
        g1 = curve.g1
        batch = BatchVerifier(keys.verifying_key, curve)
        tampered = list(proofs)
        tampered[0] = type(proofs[0])(
            a=g1.add(proofs[0].a, g1.generator), b=proofs[0].b,
            c=proofs[0].c)
        ok, bad = batch.verify_window(tampered, publics, random.Random(42))
        assert not ok
        assert bad == [0]
