"""Tests for batch verification (random-linear-combination batching)."""

import random

import pytest

from repro.curves import CURVES
from repro.errors import ProofError
from repro.snark import (
    BatchVerifier,
    Groth16Prover,
    Groth16Verifier,
    R1CS,
    setup,
)

CURVE = CURVES["ALT-BN128"]
F = CURVE.fr


@pytest.fixture(scope="module")
def batch_setup():
    """One circuit, several proofs over different witnesses."""
    r1cs = R1CS(field=F, n_public=1)
    x = r1cs.new_variable()
    r1cs.add_constraint({x: 1}, {x: 1}, {1: 1})  # x^2 = public
    keys = setup(r1cs, CURVE, random.Random(55))
    prover = Groth16Prover(r1cs, keys.proving_key, CURVE)
    proofs, publics = [], []
    for i, x_val in enumerate((3, 11, 254)):
        assignment = [1, x_val * x_val % F.modulus, x_val]
        proofs.append(prover.prove(assignment, random.Random(100 + i)))
        publics.append([x_val * x_val % F.modulus])
    return keys, proofs, publics


class TestBatchVerifier:
    def test_all_valid_batch_accepts(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        assert batch.verify_batch(proofs, publics, random.Random(1))

    def test_single_bad_proof_fails_batch(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        g1 = CURVE.g1
        tampered = list(proofs)
        tampered[1] = type(proofs[1])(
            a=g1.add(proofs[1].a, g1.generator), b=proofs[1].b, c=proofs[1].c
        )
        assert not batch.verify_batch(tampered, publics, random.Random(2))

    def test_wrong_public_input_fails_batch(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        bad = [list(p) for p in publics]
        bad[0][0] = (bad[0][0] + 1) % F.modulus
        assert not batch.verify_batch(proofs, bad, random.Random(3))

    def test_empty_batch_accepts(self, batch_setup):
        keys, _, _ = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        assert batch.verify_batch([], [], random.Random(4))

    def test_length_mismatch_raises(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        with pytest.raises(ProofError):
            batch.verify_batch(proofs, publics[:-1], random.Random(5))

    def test_infinity_proof_rejected(self, batch_setup):
        keys, proofs, publics = batch_setup
        batch = BatchVerifier(keys.verifying_key, CURVE)
        broken = list(proofs)
        broken[0] = type(proofs[0])(a=None, b=proofs[0].b, c=proofs[0].c)
        assert not batch.verify_batch(broken, publics, random.Random(6))

    def test_agrees_with_single_verification(self, batch_setup):
        keys, proofs, publics = batch_setup
        single = Groth16Verifier(keys.verifying_key, CURVE)
        for proof, inputs in zip(proofs, publics):
            assert single.verify(proof, inputs)
