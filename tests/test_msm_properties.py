"""Algebraic property tests for the MSM implementations (hypothesis)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import bn128_g1
from repro.gpusim import V100
from repro.msm import GzkpMsm, SubMsmPippenger, naive_msm

G = bn128_g1
L = 254


def _inputs(rng, n):
    points = [G.random_point(rng) for _ in range(n)]
    scalars = [rng.randrange(G.order) for _ in range(n)]
    return scalars, points


def _engine(k=5, m=2):
    return GzkpMsm(G, L, V100, window=k, interval=m)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_linearity_in_scalars(seed):
    """msm(s + t, P) == msm(s, P) + msm(t, P)."""
    rng = random.Random(seed)
    n = rng.randrange(2, 10)
    s, points = _inputs(rng, n)
    t = [rng.randrange(G.order) for _ in range(n)]
    engine = _engine()
    lhs = engine.compute([(a + b) % G.order for a, b in zip(s, t)], points)
    rhs = G.add(engine.compute(s, points), engine.compute(t, points))
    assert lhs == rhs


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_permutation_invariance(seed):
    """The inner product is order-independent."""
    rng = random.Random(seed)
    n = rng.randrange(2, 12)
    scalars, points = _inputs(rng, n)
    engine = _engine()
    base = engine.compute(scalars, points)
    order = list(range(n))
    rng.shuffle(order)
    shuffled = engine.compute([scalars[i] for i in order],
                              [points[i] for i in order])
    assert base == shuffled


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_splitting_additivity(seed):
    """msm(v) == msm(v[:k]) + msm(v[k:]) — the identity behind both
    sub-MSM partitioning and the multi-GPU split."""
    rng = random.Random(seed)
    n = rng.randrange(4, 14)
    scalars, points = _inputs(rng, n)
    cut = rng.randrange(1, n)
    engine = _engine()
    whole = engine.compute(scalars, points)
    parts = G.add(engine.compute(scalars[:cut], points[:cut]),
                  engine.compute(scalars[cut:], points[cut:]))
    assert whole == parts


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_scalar_scaling(seed):
    """msm(c * s, P) == c * msm(s, P)."""
    rng = random.Random(seed)
    n = rng.randrange(2, 8)
    scalars, points = _inputs(rng, n)
    c = rng.randrange(1, G.order)
    engine = _engine()
    lhs = engine.compute([s * c % G.order for s in scalars], points)
    rhs = G.scalar_mul(c, engine.compute(scalars, points))
    assert lhs == rhs


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       k=st.integers(min_value=3, max_value=10),
       m=st.integers(min_value=1, max_value=6))
def test_result_independent_of_configuration(seed, k, m):
    """Window size and checkpoint interval are performance knobs — the
    result must not depend on them."""
    rng = random.Random(seed)
    n = rng.randrange(2, 10)
    scalars, points = _inputs(rng, n)
    expected = naive_msm(G, scalars, points)
    assert GzkpMsm(G, L, V100, window=k, interval=m).compute(
        scalars, points
    ) == expected


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       window=st.integers(min_value=4, max_value=12))
def test_pippenger_window_invariance(seed, window):
    rng = random.Random(seed)
    n = rng.randrange(2, 10)
    scalars, points = _inputs(rng, n)
    engine = SubMsmPippenger(G, L, V100, window=window)
    assert engine.compute(scalars, points) == naive_msm(G, scalars, points)


def test_duplicate_points_accumulate():
    """Repeated points must contribute multiple times (buckets merge
    them into one accumulation chain)."""
    rng = random.Random(99)
    p = G.random_point(rng)
    engine = _engine()
    result = engine.compute([3, 4], [p, p])
    assert result == G.scalar_mul(7, p)


def test_point_and_its_negation_cancel():
    rng = random.Random(100)
    p = G.random_point(rng)
    engine = _engine()
    assert engine.compute([5, 5], [p, G.neg(p)]) is None
