"""Tests for kernel timelines and the per-phase breakdown reporting."""

import pytest

from repro.curves import CURVES
from repro.ff import BLS12_381_R
from repro.gpusim import V100, Trace
from repro.gpusim.executor import Kernel, KernelTimeline
from repro.gpusim.trace import DFP_BACKEND
from repro.msm import GzkpMsm
from repro.ntt import GzkpNtt


def _trace(muls):
    t = Trace()
    t.add_gpu_muls(381, muls, DFP_BACKEND)
    return t


class TestKernelTimeline:
    def test_total_is_sum_of_kernels(self):
        tl = KernelTimeline(device=V100)
        tl.add("a", "p1", _trace(1_000_000))
        tl.add("b", "p2", _trace(2_000_000))
        expected = sum(tl.kernel_seconds(k) for k in tl.kernels)
        assert tl.total_seconds() == pytest.approx(expected)

    def test_phase_grouping(self):
        tl = KernelTimeline(device=V100)
        tl.add("a", "merge", _trace(1_000_000))
        tl.add("b", "merge", _trace(1_000_000))
        tl.add("c", "reduce", _trace(500_000))
        phases = tl.phase_seconds()
        assert set(phases) == {"merge", "reduce"}
        assert phases["merge"] > phases["reduce"]
        fractions = tl.phase_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_timeline(self):
        tl = KernelTimeline(device=V100)
        assert tl.total_seconds() == 0
        assert tl.phase_fractions() == {}
        assert tl.peak_memory_bytes() == 0

    def test_peak_memory(self):
        tl = KernelTimeline(device=V100)
        t1, t2 = _trace(1), _trace(1)
        t1.gpu_memory_bytes = 100
        t2.gpu_memory_bytes = 300
        tl.add("a", "p", t1)
        tl.add("b", "p", t2)
        assert tl.peak_memory_bytes() == 300

    def test_render(self):
        tl = KernelTimeline(device=V100)
        tl.add("kernel-x", "phase-y", _trace(1_000_000))
        text = tl.render("My breakdown")
        assert "My breakdown" in text
        assert "kernel-x" in text
        assert "total" in text


class TestMsmTimeline:
    @pytest.fixture(scope="class")
    def timeline(self):
        bls = CURVES["BLS12-381"]
        return GzkpMsm(bls.g1, bls.fr.bits, V100).timeline(1 << 22)

    def test_phases_present(self, timeline):
        phases = timeline.phase_seconds()
        assert "point-merging" in phases
        assert "bucket-reduction" in phases

    def test_point_merging_dominates(self, timeline):
        """§4.1: 'The point-merging step is the most time-consuming,
        taking up 90% of the overall MSM execution.'"""
        fractions = timeline.phase_fractions()
        assert fractions["point-merging"] > 0.75

    def test_timeline_consistent_with_estimate(self, timeline):
        bls = CURVES["BLS12-381"]
        estimate = GzkpMsm(bls.g1, bls.fr.bits, V100).estimate_seconds(1 << 22)
        assert timeline.total_seconds() == pytest.approx(estimate, rel=0.4)

    def test_fold_kernel_appears_when_checkpointed(self):
        bls = CURVES["BLS12-381"]
        engine = GzkpMsm(bls.g1, bls.fr.bits, V100, window=16, interval=4)
        names = [k.name for k in engine.timeline(1 << 20).kernels]
        assert "residual checkpoint fold" in names
        engine_full = GzkpMsm(bls.g1, bls.fr.bits, V100, window=16, interval=1)
        names_full = [k.name for k in engine_full.timeline(1 << 20).kernels]
        assert "residual checkpoint fold" not in names_full


class TestNttTimeline:
    def test_batches_match_config(self):
        engine = GzkpNtt(BLS12_381_R, V100)
        cfg = engine.configure(1 << 22)
        timeline = engine.timeline(1 << 22)
        assert len(timeline.kernels) == cfg.n_batches

    def test_total_close_to_estimate(self):
        engine = GzkpNtt(BLS12_381_R, V100)
        assert engine.timeline(1 << 22).total_seconds() == pytest.approx(
            engine.estimate_seconds(1 << 22), rel=0.3
        )

    def test_all_butterfly_phase(self):
        engine = GzkpNtt(BLS12_381_R, V100)
        fractions = engine.timeline(1 << 20).phase_fractions()
        assert fractions == {"butterflies": pytest.approx(1.0)}
