"""Limb-bound certifier: certificates, geometry mirror, cadence guard."""

import pytest

from repro.analysis import bounds
from repro.analysis.bounds import (
    certified_safe_clean_every,
    certify_all,
    certify_dfp,
    certify_modulus,
    certify_native_mont,
    certify_numpy_limb,
    certify_soa_curve,
    limb_geometry,
)
from repro.analysis.report import AnalysisReport
from repro.errors import FieldError
from repro.ff.params import BASE_FIELDS, SCALAR_FIELDS

ALL_FIELDS = sorted(
    {f.modulus for f in list(SCALAR_FIELDS.values())
     + list(BASE_FIELDS.values())}
)
BN254_R = SCALAR_FIELDS["ALT-BN128"].modulus


def test_certify_all_passes_at_head():
    certs = certify_all()
    # 5 families x 6 distinct moduli (Fr + Fq of three curves)
    assert len(certs) == 30
    bad = [(c.family, c.modulus_name, [v.name for v in c.violations()])
           for c in certs if not c.ok]
    assert bad == []


@pytest.mark.parametrize("modulus", ALL_FIELDS)
def test_every_family_certifies(modulus):
    for cert in certify_modulus("m", modulus):
        assert cert.ok, [v.name for v in cert.violations()]
        assert cert.checks, "empty certificate proves nothing"


def test_native_mont_certificate_mirrors_loader_gate():
    from repro.backend import native

    cert = certify_native_mont("ALT-BN128.Fr", BN254_R)
    assert cert.ok
    assert cert.family == "native-mont"
    # The certificate's width cap must agree with the loader's actual
    # MAX_WORDS gate (get_native_field refuses w > MAX_WORDS - 2).
    assert cert.params["max_words"] == native.MAX_WORDS
    width = cert.check("cios/scratch-width")
    assert width is not None
    assert width.limit == native.MAX_WORDS - 1


def test_native_mont_rejects_even_and_oversized_moduli():
    # An even modulus has no n0inv: structural violation.
    cert = certify_native_mont("even", (1 << 64) - 2)
    assert not cert.ok
    assert "cios/odd-modulus" in {v.name for v in cert.violations()}
    # A modulus wider than the scratch gate fails the width check —
    # exactly the inputs get_native_field refuses at runtime.
    huge = (1 << (64 * 31)) - 3
    cert = certify_native_mont("huge", huge)
    assert not cert.ok
    assert "cios/scratch-width" in {v.name for v in cert.violations()}


def test_weakened_cadence_is_rejected():
    geom = limb_geometry(BN254_R)
    cert = certify_numpy_limb("ALT-BN128.Fr", BN254_R,
                              clean_every=8 * geom.clean_every)
    assert not cert.ok
    names = {v.name for v in cert.violations()}
    assert "geom/cadence-within-certified" in names
    # Must be a real float-exactness violation too, not only the
    # structural cadence comparison.
    assert any(v.kind == "float53" for v in cert.violations())


def test_weakened_cadence_fails_the_report():
    geom = limb_geometry(BN254_R)
    report = AnalysisReport(certificates=[
        certify_numpy_limb("ALT-BN128.Fr", BN254_R,
                           clean_every=8 * geom.clean_every)
    ])
    assert not report.ok
    assert "VIOLATION" in report.render()


@pytest.mark.parametrize("modulus", ALL_FIELDS)
def test_safe_cadence_covers_configured(modulus):
    geom = limb_geometry(modulus)
    safe = certified_safe_clean_every(geom.limb_bits, geom.lg)
    assert geom.clean_every <= safe
    # ... and the certified bound is genuinely tight: one past it fails.
    assert not bounds._sweep_is_safe(geom.limb_bits, geom.lg, safe + 1)


@pytest.mark.parametrize("modulus", ALL_FIELDS)
def test_geometry_mirror_matches_backend(modulus):
    nl = pytest.importorskip("repro.backend.numpy_limb")
    if not nl.numpy_available():
        pytest.skip("numpy not available")
    real = nl._geometry(modulus)
    mirror = limb_geometry(modulus, nl.LIMB_BITS)
    assert (mirror.ld, mirror.lg, mirror.w32, mirror.eg_w32,
            mirror.clean_every) == (real.ld, real.lg, real.w32,
                                    real.eg_w32, real.clean_every)
    assert [int(v) for v in real.kp_limbs[:-1]] == [
        (mirror.kp >> (mirror.limb_bits * j)) & ((1 << mirror.limb_bits) - 1)
        for j in range(mirror.lg - 1)
    ]


def test_runtime_guard_rejects_uncertified_cadence(monkeypatch):
    nl = pytest.importorskip("repro.backend.numpy_limb")
    if not nl.numpy_available():
        pytest.skip("numpy not available")
    monkeypatch.setattr(bounds, "certified_safe_clean_every",
                        lambda limb_bits, lg: 1)
    with pytest.raises(FieldError, match="certified safe cadence"):
        nl._Geometry(BN254_R)


def test_runtime_guard_quiet_at_configured_cadence():
    nl = pytest.importorskip("repro.backend.numpy_limb")
    if not nl.numpy_available():
        pytest.skip("numpy not available")
    for modulus in ALL_FIELDS:
        nl._Geometry(modulus)  # must not raise


def test_dfp_certificate_structure():
    cert = certify_dfp("ALT-BN128.Fr", BN254_R)
    assert cert.ok
    w = cert.witnesses["two_product"]
    assert w["limb"] == (1 << 52) - 1
    assert w["magnitude"] == w["limb"] * w["limb"]


def test_vmul_witness_is_feasible():
    for modulus in ALL_FIELDS:
        cert = certify_numpy_limb("m", modulus)
        w = cert.witnesses["vmul"]
        assert 0 < w["value"] < modulus
        bound = cert.check(w["check"])
        assert bound is not None
        assert w["magnitude"] <= bound.bound


def test_soa_certificate_covers_all_kernels():
    cert = certify_soa_curve("ALT-BN128.Fq", BASE_FIELDS["ALT-BN128"].modulus)
    assert cert.ok
    names = {c.name for c in cert.checks}
    assert {"soa/mul-term-int64", "soa/fold-rowsum", "soa/topfold-zero",
            "soa/egress-float"} <= names


def test_report_json_round_trips():
    import json

    report = AnalysisReport(certificates=certify_modulus("m", BN254_R))
    data = json.loads(report.to_json())
    assert data["ok"] is True
    assert len(data["certificates"]) == 5
    for cert in data["certificates"]:
        for check in cert["checks"]:
            assert check["bound"] < check["limit"]


def test_uncertifiable_geometry_raises():
    with pytest.raises(ValueError, match="not certifiable"):
        # 2^53-scale limbs in a 22-bit carry pipeline can never work
        certified_safe_clean_every(53, 14)
