"""Tests for FieldVector and the column-major GPU layout model (§3)."""

import random

import numpy as np
import pytest

from repro.errors import FieldError
from repro.ff import ALT_BN128_R, BLS12_381_R, MNT4753_R, FieldVector
from repro.ff.vectorfield import pad_to_power_of_two

F = BLS12_381_R


def rand_vec(n, field=F, seed=0):
    rng = random.Random(seed)
    return FieldVector(field, [rng.randrange(field.modulus) for _ in range(n)])


class TestBasics:
    def test_canonicalisation(self):
        v = FieldVector(F, [F.modulus + 5, -1])
        assert v[0] == 5
        assert v[1] == F.modulus - 1

    def test_sequence_protocol(self):
        v = rand_vec(8)
        assert len(v) == 8
        v[3] = 42
        assert v[3] == 42
        assert list(iter(v)) == v.values

    def test_equality_and_copy(self):
        v = rand_vec(4)
        w = v.copy()
        assert v == w
        w[0] = (w[0] + 1) % F.modulus
        assert v != w

    def test_zeros_random(self):
        assert FieldVector.zeros(F, 5).values == [0] * 5
        rng = random.Random(1)
        v = FieldVector.random(F, 5, rng)
        assert all(0 <= x < F.modulus for x in v)


class TestArithmetic:
    def test_add_sub_roundtrip(self):
        a, b = rand_vec(16, seed=1), rand_vec(16, seed=2)
        assert a.add(b).sub(b) == a

    def test_pointwise_mul(self):
        a, b = rand_vec(8, seed=3), rand_vec(8, seed=4)
        prod = a.pointwise_mul(b)
        assert prod[2] == a[2] * b[2] % F.modulus

    def test_scale(self):
        a = rand_vec(8, seed=5)
        assert a.scale(3)[1] == a[1] * 3 % F.modulus

    def test_length_mismatch(self):
        with pytest.raises(FieldError):
            rand_vec(4).add(rand_vec(5))

    def test_field_mismatch(self):
        with pytest.raises(FieldError):
            rand_vec(4).add(rand_vec(4, field=ALT_BN128_R))


class TestColumnMajorLayout:
    @pytest.mark.parametrize("field", [ALT_BN128_R, BLS12_381_R, MNT4753_R],
                             ids=lambda f: f.name)
    def test_roundtrip(self, field):
        v = rand_vec(10, field=field, seed=6)
        mat = v.to_column_major()
        assert mat.shape == (field.limbs64, 10)
        assert FieldVector.from_column_major(field, mat) == v

    def test_row_j_holds_word_j(self):
        v = FieldVector(F, [(3 << 64) | 7])
        mat = v.to_column_major()
        assert int(mat[0, 0]) == 7   # word 0
        assert int(mat[1, 0]) == 3   # word 1

    def test_column_major_is_contiguous_by_word(self):
        """The paper's layout: the first words of all N integers are
        stored contiguously. numpy's C-order flatten of our (limbs, N)
        matrix gives exactly that order."""
        v = rand_vec(4, seed=7)
        flat = v.to_column_major().flatten()
        # First N entries are word 0 of each element, in element order.
        for i in range(4):
            assert int(flat[i]) == v[i] & ((1 << 64) - 1)

    def test_word_address(self):
        v = rand_vec(100, seed=8)
        # Word w of element e is at w * N + e.
        assert v.word_address(5, 0) == 5
        assert v.word_address(5, 2) == 2 * 100 + 5
        with pytest.raises(FieldError):
            v.word_address(100, 0)
        with pytest.raises(FieldError):
            v.word_address(0, v.n_limbs)

    def test_warp_access_contiguity(self):
        """32 threads reading word w of elements e..e+31 touch 32
        consecutive addresses — the coalescing the layout exists for."""
        v = rand_vec(256, seed=9)
        addresses = [v.word_address(e, 3) for e in range(32, 64)]
        assert addresses == list(range(addresses[0], addresses[0] + 32))

    def test_wrong_limb_count_rejected(self):
        mat = np.zeros((2, 4), dtype=np.uint64)
        with pytest.raises(FieldError):
            FieldVector.from_column_major(MNT4753_R, mat)

    def test_byte_accounting(self):
        v = rand_vec(10, field=MNT4753_R)
        assert v.element_bytes() == 12 * 8
        assert v.nbytes() == 10 * 96


class TestPadding:
    def test_pad_to_power_of_two(self):
        padded = pad_to_power_of_two([1, 2, 3], F)
        assert len(padded) == 4
        assert padded.values == [1, 2, 3, 0]

    def test_already_power(self):
        assert len(pad_to_power_of_two([1, 2, 3, 4], F)) == 4

    def test_empty(self):
        assert len(pad_to_power_of_two([], F)) == 1
