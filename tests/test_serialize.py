"""Tests for point compression and proof/key serialization."""

import random

import pytest

from repro.curves import CURVES
from repro.errors import ProofError
from repro.snark import Groth16Prover, Groth16Verifier, R1CS, setup
from repro.snark.serialize import (
    compress_g1,
    compress_g2,
    decompress_g1,
    decompress_g2,
    deserialize_proof,
    deserialize_verifying_key,
    fq2_sqrt,
    fq_sqrt,
    serialize_proof,
    serialize_verifying_key,
)

CURVE_NAMES = ["ALT-BN128", "BLS12-381", "MNT4753"]


@pytest.fixture(params=CURVE_NAMES, ids=CURVE_NAMES)
def curve(request):
    return CURVES[request.param]


class TestSqrt:
    def test_fq_sqrt_roundtrip(self, curve):
        q = curve.fq.modulus
        rng = random.Random(1)
        for _ in range(10):
            x = rng.randrange(q)
            root = fq_sqrt(q, x * x % q)
            assert root is not None
            assert root * root % q == x * x % q

    def test_fq_sqrt_nonresidue(self, curve):
        q = curve.fq.modulus
        nonres = curve.fq.find_nonresidue()
        assert fq_sqrt(q, nonres) is None

    def test_fq2_sqrt_roundtrip(self, curve):
        field = curve.g2.coord_field
        q = curve.fq.modulus
        rng = random.Random(2)
        for _ in range(6):
            x = field.element([rng.randrange(q), rng.randrange(q)])
            sq = x * x
            root = fq2_sqrt(field, sq)
            assert root is not None
            assert root * root == sq

    def test_fq2_sqrt_base_field_values(self, curve):
        field = curve.g2.coord_field
        # A residue and a non-residue of Fq are both squares in Fq2.
        for v in (4, curve.fq.find_nonresidue()):
            elem = field.from_base(v)
            root = fq2_sqrt(field, elem)
            assert root is not None
            assert root * root == elem


class TestPointCompression:
    def test_g1_roundtrip(self, curve):
        rng = random.Random(3)
        for _ in range(5):
            p = curve.g1.random_point(rng)
            data = compress_g1(curve.g1, p)
            assert decompress_g1(curve.g1, data) == p

    def test_g1_infinity(self, curve):
        data = compress_g1(curve.g1, None)
        assert decompress_g1(curve.g1, data) is None

    def test_g1_both_parities(self, curve):
        g = curve.g1.generator
        neg = curve.g1.neg(g)
        assert decompress_g1(curve.g1, compress_g1(curve.g1, g)) == g
        assert decompress_g1(curve.g1, compress_g1(curve.g1, neg)) == neg

    def test_g1_bad_length(self, curve):
        with pytest.raises(ProofError):
            decompress_g1(curve.g1, b"\x00" * 3)

    def test_g1_off_curve_x_rejected(self, curve):
        n = (curve.fq.bits + 7) // 8
        # Find an x with no curve point.
        field = curve.fq
        for x in range(2, 200):
            rhs = field.add(
                field.add(field.pow(x, 3), field.mul(
                    curve.g1.a if isinstance(curve.g1.a, int) else 0, x)),
                curve.g1.b if isinstance(curve.g1.b, int) else 0,
            )
            if fq_sqrt(field.modulus, rhs) is None:
                data = bytes([0]) + x.to_bytes(n, "big")
                with pytest.raises(ProofError):
                    decompress_g1(curve.g1, data)
                return
        pytest.skip("no invalid x found in range")

    def test_g2_roundtrip(self, curve):
        rng = random.Random(4)
        for _ in range(3):
            p = curve.g2.random_point(rng)
            data = compress_g2(curve.g2, p)
            assert decompress_g2(curve.g2, data) == p

    def test_g2_infinity_and_negation(self, curve):
        assert decompress_g2(curve.g2, compress_g2(curve.g2, None)) is None
        g = curve.g2.generator
        neg = curve.g2.neg(g)
        assert decompress_g2(curve.g2, compress_g2(curve.g2, neg)) == neg


class TestProofSerialization:
    @pytest.fixture(scope="class")
    def proof_setup(self):
        curve = CURVES["ALT-BN128"]
        r1cs = R1CS(field=curve.fr, n_public=1)
        x = r1cs.new_variable()
        r1cs.add_constraint({x: 1}, {x: 1}, {1: 1})  # x^2 = public
        assignment = [1, 49, 7]
        keys = setup(r1cs, curve, random.Random(5))
        prover = Groth16Prover(r1cs, keys.proving_key, curve)
        proof = prover.prove(assignment, random.Random(6))
        return curve, keys, proof, assignment

    def test_roundtrip(self, proof_setup):
        curve, _, proof, _ = proof_setup
        data = serialize_proof(proof, curve)
        restored = deserialize_proof(data, curve)
        assert restored.a == proof.a
        assert restored.b == proof.b
        assert restored.c == proof.c

    def test_deserialized_proof_verifies(self, proof_setup):
        curve, keys, proof, assignment = proof_setup
        data = serialize_proof(proof, curve)
        restored = deserialize_proof(data, curve)
        verifier = Groth16Verifier(keys.verifying_key, curve)
        assert verifier.verify(restored, [49])

    def test_wire_size_succinct(self, proof_setup):
        curve, _, proof, _ = proof_setup
        data = serialize_proof(proof, curve)
        assert len(data) < 200  # BN254: 2*33 + 65 = 131 bytes

    def test_bad_length_rejected(self, proof_setup):
        curve, _, proof, _ = proof_setup
        data = serialize_proof(proof, curve)
        with pytest.raises(ProofError):
            deserialize_proof(data[:-1], curve)

    def test_corrupted_point_rejected(self, proof_setup):
        curve, _, proof, _ = proof_setup
        data = bytearray(serialize_proof(proof, curve))
        data[5] ^= 0xFF
        corrupted = bytes(data)
        try:
            restored = deserialize_proof(corrupted, curve)
        except ProofError:
            return  # x left the curve: rejected at decode time
        # Or it decodes to a different point and fails verification
        # downstream; either way the original A must be gone.
        assert restored.a != proof.a

    def test_verifying_key_roundtrip(self, proof_setup):
        curve, keys, _, _ = proof_setup
        data = serialize_verifying_key(keys.verifying_key, curve)
        vk = deserialize_verifying_key(data, curve)
        assert vk.alpha_g1 == keys.verifying_key.alpha_g1
        assert vk.beta_g2 == keys.verifying_key.beta_g2
        assert vk.ic == keys.verifying_key.ic

    def test_verifying_key_trailing_bytes_rejected(self, proof_setup):
        curve, keys, _, _ = proof_setup
        data = serialize_verifying_key(keys.verifying_key, curve)
        with pytest.raises(ProofError):
            deserialize_verifying_key(data + b"\x00", curve)
