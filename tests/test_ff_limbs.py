"""Tests for the GPU-style limb arithmetic: 64-bit Montgomery (CIOS) and
the base-2^52 double-precision-float path (§4.3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.ff import (
    ALT_BN128_Q,
    BLS12_381_Q,
    MNT4753_Q,
    DfpMultiplier,
    MontgomeryContext,
    from_limbs,
    to_limbs,
    two_product,
    veltkamp_split,
)

MODULI = {
    "256-bit": ALT_BN128_Q.modulus,
    "381-bit": BLS12_381_Q.modulus,
    "753-bit": MNT4753_Q.modulus,
}


@pytest.fixture(params=list(MODULI), ids=list(MODULI))
def modulus(request):
    return MODULI[request.param]


class TestLimbCodec:
    def test_roundtrip(self):
        rng = random.Random(0)
        for bits in (64, 128, 256, 753):
            v = rng.getrandbits(bits)
            n = (bits + 63) // 64
            assert from_limbs(to_limbs(v, n)) == v

    def test_overflow_rejected(self):
        with pytest.raises(FieldError):
            to_limbs(1 << 64, 1)

    def test_negative_rejected(self):
        with pytest.raises(FieldError):
            to_limbs(-1, 4)


class TestMontgomeryCios:
    def test_limb_geometry(self):
        assert MontgomeryContext(ALT_BN128_Q.modulus).n_limbs == 4
        assert MontgomeryContext(BLS12_381_Q.modulus).n_limbs == 6
        assert MontgomeryContext(MNT4753_Q.modulus).n_limbs == 12

    def test_even_modulus_rejected(self):
        with pytest.raises(FieldError):
            MontgomeryContext(16)

    def test_domain_roundtrip(self, modulus):
        ctx = MontgomeryContext(modulus)
        rng = random.Random(7)
        for _ in range(10):
            a = rng.randrange(modulus)
            assert ctx.from_mont(ctx.to_mont(a)) == a

    def test_cios_matches_bignum(self, modulus):
        ctx = MontgomeryContext(modulus)
        rng = random.Random(8)
        for _ in range(15):
            a, b = rng.randrange(modulus), rng.randrange(modulus)
            assert ctx.mont_mul_int(a, b) == a * b % modulus

    def test_limb_add_sub(self, modulus):
        ctx = MontgomeryContext(modulus)
        rng = random.Random(9)
        for _ in range(10):
            a, b = rng.randrange(modulus), rng.randrange(modulus)
            la, lb = to_limbs(a, ctx.n_limbs), to_limbs(b, ctx.n_limbs)
            assert from_limbs(ctx.limb_add(la, lb)) == (a + b) % modulus
            assert from_limbs(ctx.limb_sub(la, lb)) == (a - b) % modulus

    def test_word_op_counts_scale_quadratically(self):
        c256 = MontgomeryContext(ALT_BN128_Q.modulus)
        c753 = MontgomeryContext(MNT4753_Q.modulus)
        # 2n^2 + n: 4 limbs -> 36 ops; 12 limbs -> 300 ops.
        assert c256.mul_word_ops() == 36
        assert c753.mul_word_ops() == 300

    def test_edge_values(self, modulus):
        ctx = MontgomeryContext(modulus)
        for a, b in [(0, 0), (0, modulus - 1), (modulus - 1, modulus - 1), (1, 1)]:
            assert ctx.mont_mul_int(a, b) == a * b % modulus


class TestDekker:
    def test_veltkamp_split_exact(self):
        for a in (1.0, 3.5, 2.0**52 - 1, 12345678901.0):
            hi, lo = veltkamp_split(a)
            assert hi + lo == a

    def test_two_product_exact_on_52bit_limbs(self):
        rng = random.Random(10)
        for _ in range(200):
            a = float(rng.getrandbits(52))
            b = float(rng.getrandbits(52))
            hi, lo = two_product(a, b)
            assert int(hi) + int(lo) == int(a) * int(b)

    @settings(max_examples=100, deadline=None)
    @given(a=st.integers(min_value=0, max_value=2**52 - 1),
           b=st.integers(min_value=0, max_value=2**52 - 1))
    def test_two_product_property(self, a, b):
        hi, lo = two_product(float(a), float(b))
        assert int(hi) + int(lo) == a * b


class TestDfpMultiplier:
    def test_limb_geometry_matches_paper(self):
        # §4.3: base D = 2^52 gives 15 limbs for a 753-bit integer.
        assert DfpMultiplier(MNT4753_Q.modulus).n_limbs == 15
        assert DfpMultiplier(ALT_BN128_Q.modulus).n_limbs == 5
        assert DfpMultiplier(BLS12_381_Q.modulus).n_limbs == 8

    def test_raw_mul_exact(self, modulus):
        mult = DfpMultiplier(modulus)
        rng = random.Random(11)
        for _ in range(10):
            a, b = rng.randrange(modulus), rng.randrange(modulus)
            assert mult.raw_mul(a, b) == a * b

    def test_mod_mul_matches_field(self, modulus):
        mult = DfpMultiplier(modulus)
        rng = random.Random(12)
        for _ in range(10):
            a, b = rng.randrange(modulus), rng.randrange(modulus)
            assert mult.mod_mul(a, b) == a * b % modulus

    def test_agreement_between_backends(self, modulus):
        """The integer (Montgomery) and float (DFP) paths are bit-exact
        equal — the key correctness claim of the GZKP library."""
        mont = MontgomeryContext(modulus)
        dfp = DfpMultiplier(modulus)
        rng = random.Random(13)
        for _ in range(8):
            a, b = rng.randrange(modulus), rng.randrange(modulus)
            assert mont.mont_mul_int(a, b) == dfp.mod_mul(a, b)

    def test_zero_and_identity(self, modulus):
        mult = DfpMultiplier(modulus)
        assert mult.mod_mul(0, 12345) == 0
        assert mult.mod_mul(1, 12345) == 12345 % modulus
