"""Repo lint rules R001–R005: one failing fixture per rule, the
suppression syntax, repo cleanliness at HEAD, and CLI exit codes."""

from pathlib import Path

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.lint import all_rules, module_name_for, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent

R001_SRC = """\
def reduce_all(values, field):
    return [v % field.modulus for v in values]


def exp(base, e, field):
    return pow(base, e, field.modulus)
"""

R002_SRC = """\
def run(task, group, stats):
    group.counter = task.counter
    stats.counter.merge(task.counter)


def dispatch(pool, task, group, stats):
    return pool.submit(run, task, group, stats)
"""

R003_SRC = """\
def bad(telemetry):
    sp = telemetry.span("phase")
    sp._start()
    try:
        return 1
    finally:
        sp._stop()
"""

R004_SRC = """\
import time


def kernel(values):
    t0 = time.perf_counter()
    return values, time.perf_counter() - t0
"""

R005_SRC = """\
from repro.backend.base import ComputeBackend


class BrokenBackend(ComputeBackend):
    def vadd(self, field, wrong, ys):
        return [field.add(x, y) for x, y in zip(wrong, ys)]
"""

#: rule -> (relative fixture path, source, expected finding count)
FIXTURES = {
    "R001": ("repro/msm/helper.py", R001_SRC, 2),
    "R002": ("repro/snark/dispatch.py", R002_SRC, 2),
    "R003": ("repro/service/spans.py", R003_SRC, 3),
    "R004": ("repro/ntt/clocked.py", R004_SRC, 2),
    "R005": ("repro/backend/broken.py", R005_SRC, 2),
}


def _write(tmp_path: Path, rel: str, src: str) -> Path:
    f = tmp_path / rel
    f.parent.mkdir(parents=True, exist_ok=True)
    f.write_text(src)
    return f


def test_rule_registry_is_complete():
    assert [r.code for r in all_rules()] == [
        "R001", "R002", "R003", "R004", "R005"]


def test_module_name_for():
    assert module_name_for(Path("src/repro/msm/gzkp.py")) == "repro.msm.gzkp"
    assert module_name_for(Path("src/repro/ff/__init__.py")) == "repro.ff"
    assert module_name_for(Path("tests/test_x.py")) == "test_x"


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_each_rule_fires_on_its_fixture(tmp_path, code):
    rel, src, expected = FIXTURES[code]
    f = _write(tmp_path, rel, src)
    findings = run_lint([str(f)])
    assert [fi.code for fi in findings] == [code] * expected
    assert all(fi.path == str(f) and fi.line > 0 for fi in findings)


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_cli_exits_nonzero_on_each_rule_fixture(tmp_path, code, capsys):
    rel, src, _ = FIXTURES[code]
    f = _write(tmp_path, rel, src)
    assert analysis_main([str(f), "--no-bounds"]) == 1
    assert code in capsys.readouterr().out


def test_suppression_same_line(tmp_path):
    src = ("def f(v, field):\n"
           "    return v % field.modulus  # repro: allow[R001]\n")
    f = _write(tmp_path, "repro/msm/ok.py", src)
    assert run_lint([str(f)]) == []


def test_suppression_preceding_line_and_lists(tmp_path):
    src = ("def f(v, field):\n"
           "    # repro: allow[R001, R004]\n"
           "    return v % field.modulus\n")
    f = _write(tmp_path, "repro/msm/ok2.py", src)
    assert run_lint([str(f)]) == []


def test_suppression_is_per_rule(tmp_path):
    src = ("def f(v, field):\n"
           "    return v % field.modulus  # repro: allow[R004]\n")
    f = _write(tmp_path, "repro/msm/wrong_code.py", src)
    assert [fi.code for fi in run_lint([str(f)])] == ["R001"]


def test_r001_exempt_inside_ff_and_backend(tmp_path):
    for rel in ("repro/ff/inner.py", "repro/backend/inner.py"):
        f = _write(tmp_path, rel, R001_SRC)
        assert run_lint([str(f)]) == []


def test_r002_quiet_under_lock(tmp_path):
    src = """\
def run(task, group, stats):
    with group.lock:
        group.counter = task.counter


def dispatch(pool, task, group, stats):
    return pool.submit(run, task, group, stats)
"""
    f = _write(tmp_path, "repro/snark/locked.py", src)
    assert run_lint([str(f)]) == []


def test_r003_quiet_with_context_manager(tmp_path):
    src = """\
def good(telemetry):
    with telemetry.span("phase"):
        return 1
"""
    f = _write(tmp_path, "repro/service/ok_spans.py", src)
    assert run_lint([str(f)]) == []


def test_r004_quiet_outside_kernel_modules(tmp_path):
    f = _write(tmp_path, "repro/service/timed.py", R004_SRC)
    assert run_lint([str(f)]) == []


def test_r005_quiet_on_conforming_backend(tmp_path):
    src = """\
from repro.backend.base import ComputeBackend


class FineBackend(ComputeBackend):
    name = "fine"

    def vadd(self, field, xs, ys, chunk=None):
        return [field.add(x, y) for x, y in zip(xs, ys)]
"""
    f = _write(tmp_path, "repro/backend/fine.py", src)
    assert run_lint([str(f)]) == []


def test_unparseable_file_is_reported(tmp_path):
    f = _write(tmp_path, "repro/msm/syntax_err.py", "def f(:\n")
    findings = run_lint([str(f)])
    assert [fi.code for fi in findings] == ["R000"]


def test_repo_is_clean_at_head():
    paths = [str(REPO_ROOT / d) for d in ("src", "tests", "benchmarks")
             if (REPO_ROOT / d).exists()]
    findings = run_lint(paths)
    assert findings == [], [f.render() for f in findings]


def test_cli_exits_zero_on_clean_tree(tmp_path, capsys):
    f = _write(tmp_path, "repro/service/clean.py", "X = 1\n")
    assert analysis_main([str(f), "--no-bounds"]) == 0
    capsys.readouterr()


def test_cli_bounds_only_passes_and_writes_json(tmp_path, capsys):
    out = tmp_path / "report.json"
    assert analysis_main(["--no-lint", str(tmp_path / "nothing"),
                          "--json", str(out)]) == 0
    capsys.readouterr()
    import json

    data = json.loads(out.read_text())
    assert data["ok"] is True
    assert len(data["certificates"]) == 30


def test_cli_fails_on_bound_violation(tmp_path, monkeypatch, capsys):
    from repro.analysis import bounds
    from repro.analysis import __main__ as cli
    from repro.ff.params import SCALAR_FIELDS

    r = SCALAR_FIELDS["ALT-BN128"].modulus
    weak = bounds.certify_numpy_limb(
        "weak", r, clean_every=8 * bounds.limb_geometry(r).clean_every)
    monkeypatch.setattr(cli, "certify_all", lambda: [weak])
    assert cli.main(["--no-lint", str(tmp_path / "nothing")]) == 1
    assert "VIOLATION" in capsys.readouterr().out
