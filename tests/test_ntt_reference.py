"""Tests for the reference NTT and the POLY stage."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NttError
from repro.ff import ALT_BN128_R, MNT4753_R, OpCounter, PrimeField
from repro.gpusim import V100
from repro.ntt import (
    GzkpNtt,
    PolyStage,
    bit_reverse_permute,
    intt,
    naive_dft,
    ntt,
)

F = ALT_BN128_R


def rand_vec(n, seed=0):
    rng = random.Random(seed)
    return [rng.randrange(F.modulus) for _ in range(n)]


class TestBitReverse:
    def test_size_8(self):
        v = list(range(8))
        bit_reverse_permute(v)
        assert v == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_involution(self):
        v = rand_vec(32)
        w = list(v)
        bit_reverse_permute(w)
        bit_reverse_permute(w)
        assert w == v

    def test_bad_size(self):
        with pytest.raises(NttError):
            bit_reverse_permute(list(range(6)))


class TestNtt:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256])
    def test_matches_naive_dft(self, n):
        v = rand_vec(n, seed=n)
        assert ntt(F, v) == naive_dft(F, v)

    @pytest.mark.parametrize("n", [2, 16, 128, 1024])
    def test_roundtrip(self, n):
        v = rand_vec(n, seed=n + 1)
        assert intt(F, ntt(F, v)) == v
        assert ntt(F, intt(F, v)) == v

    def test_linearity(self):
        u, v = rand_vec(64, 1), rand_vec(64, 2)
        s = [(a + b) % F.modulus for a, b in zip(u, v)]
        expect = [(a + b) % F.modulus for a, b in zip(ntt(F, u), ntt(F, v))]
        assert ntt(F, s) == expect

    def test_constant_polynomial(self):
        # NTT of [c, 0, ..., 0] is [c, c, ..., c].
        v = [7] + [0] * 15
        assert ntt(F, v) == [7] * 16

    def test_delta_at_one(self):
        # Coefficients all 1 evaluate to N at x=1 and 0 elsewhere
        # (geometric sums of roots of unity vanish).
        n = 16
        v = [1] * n
        out = ntt(F, v)
        assert out[0] == n
        assert all(x == 0 for x in out[1:])

    def test_convolution_theorem(self):
        """Pointwise product of NTTs = cyclic convolution of inputs."""
        n = 32
        u, v = rand_vec(n, 3), rand_vec(n, 4)
        p = F.modulus
        prod = [(a * b) % p for a, b in zip(ntt(F, u), ntt(F, v))]
        conv = intt(F, prod)
        expected = [0] * n
        for i in range(n):
            for j in range(n):
                expected[(i + j) % n] = (expected[(i + j) % n] + u[i] * v[j]) % p
        assert conv == expected

    def test_bad_size_rejected(self):
        with pytest.raises(NttError):
            ntt(F, [1, 2, 3])

    def test_works_on_753bit_field(self):
        v = [x % MNT4753_R.modulus for x in rand_vec(16, 5)]
        assert intt(MNT4753_R, ntt(MNT4753_R, v)) == v

    def test_butterfly_count(self):
        counter = OpCounter()
        ntt(F, rand_vec(64, 6), counter=counter)
        # N/2 * log N butterflies.
        assert counter.total("butterfly") == 32 * 6
        assert counter.total("fr_mul") == 32 * 6
        assert counter.total("fr_add") == 64 * 6


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**64), min_size=16,
                max_size=16))
def test_parseval_like_roundtrip_property(coeffs):
    assert intt(F, ntt(F, coeffs)) == [c % F.modulus for c in coeffs]


class TestPolyStage:
    """The seven-NTT H(x) computation."""

    @pytest.fixture()
    def stage(self):
        return PolyStage(F, GzkpNtt(F, V100))

    def _random_satisfying_abc(self, n, seed=0):
        """Build evaluation vectors with a*b == c pointwise (what a
        satisfied R1CS instance guarantees on the domain)."""
        rng = random.Random(seed)
        a = [rng.randrange(F.modulus) for _ in range(n)]
        b = [rng.randrange(F.modulus) for _ in range(n)]
        c = [x * y % F.modulus for x, y in zip(a, b)]
        return a, b, c

    def test_h_is_exact_quotient(self, stage):
        """(A*B - C) must equal H * (x^N - 1) as polynomials."""
        n = 16
        a, b, c = self._random_satisfying_abc(n, 7)
        h = stage.compute_h(a, b, c)
        assert len(h) == n
        # Verify at a random point z outside the domain:
        # A(z)B(z) - C(z) == H(z) (z^N - 1).
        p = F.modulus
        z = 0xDEADBEEF
        a_c, b_c, c_c = intt(F, a), intt(F, b), intt(F, c)

        def ev(coeffs, x):
            acc = 0
            for coeff in reversed(coeffs):
                acc = (acc * x + coeff) % p
            return acc

        lhs = (ev(a_c, z) * ev(b_c, z) - ev(c_c, z)) % p
        rhs = ev(h, z) * (pow(z, n, p) - 1) % p
        assert lhs == rhs

    def test_unsatisfied_inputs_produce_inexact_quotient(self, stage):
        """If a*b != c on the domain, no polynomial H satisfies the
        identity — the computed h fails the random-point check."""
        n = 16
        a, b, c = self._random_satisfying_abc(n, 8)
        c[3] = (c[3] + 1) % F.modulus
        h = stage.compute_h(a, b, c)
        p = F.modulus
        z = 0xC0FFEE
        a_c, b_c, c_c = intt(F, a), intt(F, b), intt(F, c)

        def ev(coeffs, x):
            acc = 0
            for coeff in reversed(coeffs):
                acc = (acc * x + coeff) % p
            return acc

        lhs = (ev(a_c, z) * ev(b_c, z) - ev(c_c, z)) % p
        rhs = ev(h, z) * (pow(z, n, p) - 1) % p
        assert lhs != rhs

    def test_zero_witness(self, stage):
        n = 8
        h = stage.compute_h([0] * n, [0] * n, [0] * n)
        assert h == [0] * n

    def test_length_mismatch_rejected(self, stage):
        with pytest.raises(NttError):
            stage.compute_h([1, 2], [1, 2, 3, 4], [1, 2])

    def test_non_power_of_two_rejected(self, stage):
        with pytest.raises(NttError):
            stage.compute_h([1] * 3, [1] * 3, [1] * 3)

    def test_plan_counts_seven_ntts(self, stage):
        n = 1 << 20
        single = GzkpNtt(F, V100).plan(n)
        combined = stage.plan(n)
        key = (F.bits, "dfp")
        assert combined.gpu_muls[key] >= 7 * single.gpu_muls[key]
        # Pointwise work adds ~10 muls/element on top of the NTTs.
        assert combined.gpu_muls[key] == pytest.approx(
            7 * single.gpu_muls[key] + 10 * n
        )
