"""Native fused Jacobian point kernels vs the scalar group law.

The raw-domain kernels of :mod:`repro.backend.native` (``jac_dbl`` /
``jac_add`` / ``jac_madd`` and their Fq2 twins) must be *bit-identical*
to the scalar formulas — coordinates AND op counts — on every curve,
through every special-lane mix the mask routing can see: infinity on
either side, P == Q (same and different Jacobian representatives),
P == -Q, and q is None on the mixed path. Hypothesis drives the lane
mixes; the point pools are deterministic offset chains so a collision
between unrelated lanes is a discrete-log event.

Also here: the native-coverage counters those dispatches feed, the
LRU prune that bounds the persistent kernel cache, and the cross-checks
that tie the certifier's replayed mul counts to the group's formula
constants and the autotuner's pricing.
"""

import os
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import coverage
from repro.backend import native
from repro.backend import numpy_curve
from repro.curves import CURVES
from repro.ff.opcount import OpCounter

numpy = pytest.importorskip("numpy")

pytestmark = pytest.mark.skipif(
    not native.native_available(), reason="no C compiler available")

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

CURVE_NAMES = ["ALT-BN128", "BLS12-381", "MNT4753"]
GROUPS = [(name, "g1") for name in CURVE_NAMES] + \
    [(name, "g2") for name in CURVE_NAMES]


def _group(name, which):
    pair = CURVES[name]
    return pair.g1 if which == "g1" else pair.g2


_POOLS = {}


def _pool(name, which, n=24):
    """Deterministic affine point pool P0 + k*G (pairwise independent
    for count-parity purposes)."""
    key = (name, which)
    pts = _POOLS.get(key)
    if pts is None:
        group = _group(name, which)
        rng = random.Random(hash(key) & 0xFFFF)
        gen = group.generator
        acc = group.to_jacobian(group.scalar_mul(rng.getrandbits(128), gen))
        jpts = []
        for _ in range(n):
            jpts.append(acc)
            acc = group.jmixed_add(acc, gen)
        pts = _POOLS[key] = group.batch_normalize(jpts)
    return pts


def _jrep(group, pt, k):
    """The (x k^2, y k^3, k) Jacobian representative of an affine pt."""
    o = group.ops
    kk = o.coerce(k)
    k2 = o.mul(kk, kk)
    return (o.mul(pt[0], k2), o.mul(pt[1], o.mul(k2, kk)), kk)


def _neg(group, jp):
    o = group.ops
    return (jp[0], o.sub(o.coerce(0), jp[1]), jp[2])


def _assert_parity(group, batch_fn, scalar_fn, ps, qs):
    """Batch output and op-count totals must equal the scalar loop's."""
    c_ref, c_vec = OpCounter(), OpCounter()
    group.counter = c_ref
    try:
        exp = [scalar_fn(p, q) for p, q in zip(ps, qs)]
        group.counter = c_vec
        got = batch_fn(group, ps, qs)
    finally:
        group.counter = None
    assert got == exp
    assert c_ref._totals == c_vec._totals


ADD_KINDS = ("normal", "p_inf", "q_inf", "eq", "eq_rep", "neg")
MIXED_KINDS = ("normal", "q_none", "p_inf", "eq", "neg")


def _build_add_lanes(group, name, which, kinds):
    o = group.ops
    pool = _pool(name, which)
    inf = (o.one, o.one, o.zero)
    ps, qs = [], []
    for i, kind in enumerate(kinds):
        a = pool[i % (len(pool) // 2)]
        b = pool[len(pool) // 2 + i % (len(pool) // 2)]
        p = _jrep(group, a, 2 + i)
        if kind == "p_inf":
            ps.append(inf)
            qs.append(_jrep(group, b, 3 + i))
        elif kind == "q_inf":
            ps.append(p)
            qs.append(inf)
        elif kind == "eq":
            ps.append(p)
            qs.append(p)
        elif kind == "eq_rep":
            ps.append(p)
            qs.append(_jrep(group, a, 5 + i))
        elif kind == "neg":
            ps.append(p)
            qs.append(_neg(group, _jrep(group, a, 7 + i)))
        else:
            ps.append(p)
            qs.append(_jrep(group, b, 3 + i))
    return ps, qs


def _build_mixed_lanes(group, name, which, kinds):
    o = group.ops
    pool = _pool(name, which)
    inf = (o.one, o.one, o.zero)
    ps, qs = [], []
    for i, kind in enumerate(kinds):
        a = pool[i % (len(pool) // 2)]
        b = pool[len(pool) // 2 + i % (len(pool) // 2)]
        if kind == "q_none":
            ps.append(_jrep(group, a, 2 + i))
            qs.append(None)
        elif kind == "p_inf":
            ps.append(inf)
            qs.append(b)
        elif kind == "eq":
            ps.append(_jrep(group, a, 2 + i))
            qs.append(a)
        elif kind == "neg":
            ps.append(group.to_jacobian(a))
            qs.append((a[0], o.sub(o.coerce(0), a[1])))
        else:
            ps.append(_jrep(group, a, 2 + i))
            qs.append(b)
    return ps, qs


# -- tiny tier-1 smoke (every curve, G1 + G2, one mix of every lane) -----------


@pytest.mark.parametrize("name,which", GROUPS)
def test_parity_smoke(name, which):
    group = _group(name, which)
    assert numpy_curve.supports_group(group)
    kinds = list(ADD_KINDS) + ["normal", "normal"]
    ps, qs = _build_add_lanes(group, name, which, kinds)
    _assert_parity(group, numpy_curve.batch_jadd, group.jadd, ps, qs)
    mkinds = list(MIXED_KINDS) + ["normal", "normal"]
    ps, qs = _build_mixed_lanes(group, name, which, mkinds)
    _assert_parity(group, numpy_curve.batch_jmixed_add, group.jmixed_add,
                   ps, qs)
    # doubling, including infinity and a y == 0-free active mix
    o = group.ops
    pts = [_jrep(group, p, 2 + i) for i, p in enumerate(_pool(name, which)[:5])]
    pts[2] = (o.one, o.one, o.zero)
    c_ref, c_vec = OpCounter(), OpCounter()
    group.counter = c_ref
    try:
        exp = [group.jdouble(p) for p in pts]
        group.counter = c_vec
        got = numpy_curve.batch_jdouble(group, pts)
    finally:
        group.counter = None
    assert got == exp
    assert c_ref._totals == c_vec._totals


# -- hypothesis lane-mix fuzz --------------------------------------------------


@pytest.mark.parametrize("name", CURVE_NAMES)
@settings(max_examples=12, deadline=None)
@given(kinds=st.lists(st.sampled_from(ADD_KINDS), min_size=1, max_size=8),
       data=st.data())
def test_fuzz_jadd_lane_mixes(name, kinds, data):
    which = data.draw(st.sampled_from(["g1", "g2"]), label="group")
    group = _group(name, which)
    ps, qs = _build_add_lanes(group, name, which, kinds)
    _assert_parity(group, numpy_curve.batch_jadd, group.jadd, ps, qs)


@pytest.mark.parametrize("name", CURVE_NAMES)
@settings(max_examples=12, deadline=None)
@given(kinds=st.lists(st.sampled_from(MIXED_KINDS), min_size=1, max_size=8),
       data=st.data())
def test_fuzz_jmixed_lane_mixes(name, kinds, data):
    which = data.draw(st.sampled_from(["g1", "g2"]), label="group")
    group = _group(name, which)
    ps, qs = _build_mixed_lanes(group, name, which, kinds)
    _assert_parity(group, numpy_curve.batch_jmixed_add, group.jmixed_add,
                   ps, qs)


# -- coverage counters ---------------------------------------------------------


def test_batch_dispatch_notes_coverage():
    coverage.reset()
    group = CURVES["ALT-BN128"].g1
    pts = [_jrep(group, p, 2 + i) for i, p in enumerate(_pool(
        "ALT-BN128", "g1")[:4])]
    numpy_curve.batch_jdouble(group, pts)
    snap = coverage.snapshot()
    assert snap.get("jacobian", {}).get("native", 0) >= 1
    summary = coverage.summarize(snap)
    assert "jacobian:native=" in summary
    drained = coverage.drain()
    assert drained == snap
    assert coverage.snapshot() == {}


def test_worker_job_emits_native_coverage_event():
    from repro.service.worker import WorkerState, execute_job

    state = WorkerState(shard=0, verify_inline=False)
    task = {"job_id": "cov-1", "curve": "ALT-BN128", "circuit": "square",
            "witness": (7,), "backend": "numpy"}
    result = execute_job(task, state)
    assert result["ok"], result.get("error")
    events = [e for e in result["telemetry"]["events"]
              if e["kind"] == "native-coverage"]
    assert len(events) == 1
    ev = events[0]
    # the numpy pipeline with loaded kernels runs these families native
    # (the tiny square domain skips the NTT sweep, so no ntt tally)
    assert ev["jacobian"]["native"] >= 1
    assert ev["pointwise"]["native"] >= 1
    assert ev.get("jacobian", {}).get("fallback", 0) == 0
    assert "jacobian:native=" in ev["detail"]


# -- persistent-cache LRU prune ------------------------------------------------


def _run_py(code, env_extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.update(env_extra)
    return subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, timeout=300,
                          env=env)


def test_cache_prune_keeps_newest_digests(tmp_path):
    """Publishing a fresh digest dir prunes the oldest stale digest
    dirs down to the cap, never touching the live digest or non-digest
    entries, and emits a native-kernel-cache-prune event."""
    stale = [f"{i:016x}" for i in range(4)]
    for i, d in enumerate(stale):
        sub = tmp_path / d
        sub.mkdir()
        (sub / "kernels.so").write_bytes(b"stale")
        t = 1_000_000 + i
        os.utime(sub, (t, t))
    keep = tmp_path / "autotune"
    keep.mkdir()
    code = """
import json, os
from repro.backend import native
assert native.native_available()
kinds = [e["kind"] for e in native.kernel_events()]
base = native.cache_base_dir()
print(json.dumps({"kinds": kinds, "dirs": sorted(os.listdir(base))}))
"""
    r = _run_py(code, {"REPRO_NATIVE_CACHE": str(tmp_path),
                       "REPRO_NATIVE_CACHE_MAX_DIRS": "3"})
    assert r.returncode == 0, r.stderr
    import json
    out = json.loads(r.stdout.strip().splitlines()[-1])
    assert "native-kernel-cache-prune" in out["kinds"]
    live = native._source_digest()
    dirs = out["dirs"]
    assert live in dirs
    assert "autotune" in dirs
    # cap 3 = live digest + 2 newest stale; the 2 oldest are gone
    assert stale[0] not in dirs and stale[1] not in dirs
    assert stale[2] in dirs and stale[3] in dirs


def test_cache_prune_ignores_non_digest_dirs(tmp_path):
    (tmp_path / "not-a-digest").mkdir()
    code = """
import json, os
from repro.backend import native
assert native.native_available()
print(json.dumps(sorted(os.listdir(native.cache_base_dir()))))
"""
    r = _run_py(code, {"REPRO_NATIVE_CACHE": str(tmp_path),
                       "REPRO_NATIVE_CACHE_MAX_DIRS": "1"})
    assert r.returncode == 0, r.stderr
    import json
    dirs = json.loads(r.stdout.strip().splitlines()[-1])
    assert "not-a-digest" in dirs
    assert native._source_digest() in dirs


# -- certifier / pricing cross-checks ------------------------------------------


def test_certificate_mul_counts_match_formula_constants():
    from repro.analysis import bounds
    from repro.curves.weierstrass import CurveGroup

    assert bounds._PDBL_FQ_MULS == CurveGroup.PDBL_FQ_MULS
    assert bounds._PADD_FQ_MULS == CurveGroup.PADD_FQ_MULS
    assert bounds._PMIXED_FQ_MULS == CurveGroup.PMIXED_FQ_MULS


@pytest.mark.parametrize("name", CURVE_NAMES)
def test_autotune_pricing_matches_certificate(name):
    """native_point_op_muls (the autotuner's pricing) and the
    native-jacobian certificate replay the same kernels, so their
    per-op mul totals must agree exactly."""
    from repro.analysis.bounds import certify_native_jacobian

    group = CURVES[name].g1
    muls = numpy_curve.native_point_op_muls(group)
    assert muls is not None
    cert = certify_native_jacobian(name, group.ops.field.modulus)
    assert cert.ok, [v.name for v in cert.violations()]
    native_muls = cert.params["native_muls"]
    consts = group.formula_constants()
    key = "pdbl" if consts["a_is_zero"] else "pdbl_a"
    assert muls["pdbl"] == native_muls[key]
    assert muls["padd"] == native_muls["padd"]
    assert muls["pmixed"] == native_muls["pmixed"]
