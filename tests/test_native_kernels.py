"""Native kernel loader + NTT/vmul kernel tests.

The loader scenarios (corrupt cached artifact, compile failure, the
two-process first-compile race) run in subprocesses with a private
``REPRO_NATIVE_CACHE``: the parent test process keeps its own loaded
library untouched, and — crucially — no test ever truncates a ``.so``
that is dlopen'd in its own process (that is a SIGBUS, not a test).
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import native
from repro.ff.params import SCALAR_FIELDS
from repro.ff.primefield import PrimeField
from repro.ntt.reference import intt, ntt

pytestmark = pytest.mark.skipif(
    not native.native_available(), reason="no C compiler available")

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

CURVE_NAMES = sorted(SCALAR_FIELDS)


def _run_py(code: str, env_extra: dict, cwd=None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, timeout=300, env=env, cwd=cwd,
    )


# -- loader regressions (subprocess, private cache) ----------------------------


def test_corrupt_cached_so_self_heals(tmp_path):
    """A corrupt persistent-cache artifact present *before* first load
    must cost one recompile, never disable native for the process."""
    cdir = tmp_path / native._source_digest()
    cdir.mkdir(parents=True)
    (cdir / "kernels.so").write_bytes(b"this is not an ELF object\n")
    code = """
import json
from repro.backend import native
ok = native.native_available()
print(json.dumps({"ok": ok, "events": [e["kind"] for e in native.kernel_events()]}))
"""
    proc = _run_py(code, {"REPRO_NATIVE_CACHE": str(tmp_path)})
    assert proc.returncode == 0, proc.stderr
    import json

    out = json.loads(proc.stdout)
    assert out["ok"] is True
    assert "native-kernel-cache-corrupt" in out["events"]
    assert "native-kernel-compile" in out["events"]
    # the healed artifact is a real shared object now
    assert (cdir / "kernels.so").stat().st_size > 1000


def test_compile_failure_is_reported_not_silent(tmp_path):
    """A failing compiler yields a one-time warning + telemetry event
    carrying the compiler stderr, and leaves no temp litter behind."""
    bindir = tmp_path / "bin"
    bindir.mkdir()
    for name in ("cc", "gcc", "clang"):
        fake = bindir / name
        fake.write_text("#!/bin/sh\necho 'doom: bad flag' >&2\nexit 1\n")
        fake.chmod(0o755)
    cache = tmp_path / "cache"
    code = """
import json, warnings
from repro.backend import native
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    ok = native.native_available()
evs = native.kernel_events()
fail = [e for e in evs if e["kind"] == "native-kernel-compile-failed"]
print(json.dumps({
    "ok": ok,
    "stderr": fail[0].get("stderr", "") if fail else "",
    "warned": any("compile failed" in str(w.message) for w in caught),
}))
"""
    proc = _run_py(code, {
        "REPRO_NATIVE_CACHE": str(cache),
        "PATH": f"{bindir}:{os.environ.get('PATH', '')}",
    })
    assert proc.returncode == 0, proc.stderr
    import json

    out = json.loads(proc.stdout)
    assert out["ok"] is False
    assert "doom: bad flag" in out["stderr"]
    assert out["warned"] is True
    cdir = cache / native._source_digest()
    leftovers = [p for p in os.listdir(cdir)
                 if p.startswith(".kernels-")] if cdir.is_dir() else []
    assert leftovers == []


def test_two_process_first_compile_race(tmp_path):
    """Two fresh processes racing the first compile against one shared
    cache directory must both end up with working kernels and a single
    complete published artifact."""
    code = """
import json
from repro.backend import native
from repro.ff.params import SCALAR_FIELDS
p = SCALAR_FIELDS["ALT-BN128"].modulus
f = native.get_native_field(p)
xs = [(i * 7919 + 13) % p for i in range(64)]
ys = [(i * 104729 + 3) % p for i in range(64)]
out = f.vmul_ints(xs, ys)
assert out == [(x * y) % p for x, y in zip(xs, ys)]
print(json.dumps({"ok": True,
                  "events": [e["kind"] for e in native.kernel_events()]}))
"""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env["REPRO_NATIVE_CACHE"] = str(tmp_path)
    procs = [subprocess.Popen([sys.executable, "-c", code],
                              stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE, text=True, env=env)
             for _ in range(2)]
    results = [p.communicate(timeout=300) for p in procs]
    import json

    for proc, (out, err) in zip(procs, results):
        assert proc.returncode == 0, err
        assert json.loads(out)["ok"] is True
    sopath = tmp_path / native._source_digest() / "kernels.so"
    assert sopath.stat().st_size > 1000


def test_env_flip_resets_loader_in_process(monkeypatch):
    """Toggling REPRO_NATIVE in-process must be honoured on the next
    lookup (the service's per-worker env overrides rely on this)."""
    assert native.native_available()
    monkeypatch.setenv(native.NATIVE_ENV_VAR, "0")
    native.drain_kernel_events()
    assert not native.native_available()
    assert any(e["kind"] == "native-kernel-disabled"
               for e in native.kernel_events())
    monkeypatch.delenv(native.NATIVE_ENV_VAR)
    assert native.native_available()


def test_reset_native_clears_state():
    native.reset_native()
    assert native._LIB is None and not native._LOAD_ATTEMPTED
    assert native.native_available()
    p = SCALAR_FIELDS["ALT-BN128"].modulus
    assert native.get_native_field(p) is not None


def test_corrupt_const_block_recomputes(tmp_path, monkeypatch):
    """A damaged per-modulus constant block is recomputed and
    republished — wrong constants can never load."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
    native.reset_native()
    try:
        p = SCALAR_FIELDS["ALT-BN128"].modulus
        f = native.get_native_field(p)
        path = native._const_block_path(p)
        assert os.path.exists(path)
        good = open(path, "rb").read()
        bad = bytearray(good)
        bad[len(bad) // 2] ^= 0xFF
        open(path, "wb").write(bytes(bad))
        assert native._load_const_block(path, p, f.w) is None
        native.reset_native()
        f2 = native.get_native_field(p)
        xs = [123456789, p - 2]
        assert f2.vmul_ints(xs, xs) == [(x * x) % p for x in xs]
        assert native._load_const_block(path, p, f2.w) is not None
    finally:
        monkeypatch.delenv("REPRO_NATIVE_CACHE")
        native.reset_native()


# -- kernel correctness --------------------------------------------------------


@pytest.mark.parametrize("curve", CURVE_NAMES)
@pytest.mark.parametrize("n", [2, 8, 64, 256])
def test_ntt_matches_reference(curve, n):
    field = PrimeField(SCALAR_FIELDS[curve].modulus)
    nf = native.get_native_field(field.modulus)
    assert nf is not None
    p = field.modulus
    vals = [(i * 2654435761 + 17) % p for i in range(n)]
    omega = field.root_of_unity(n)
    got = nf.ntt_ints(field, vals, omega)
    want = ntt(field, vals, backend="python")
    assert got == want


@pytest.mark.parametrize("curve", CURVE_NAMES)
def test_ntt_roundtrip_through_reference_intt(curve):
    field = PrimeField(SCALAR_FIELDS[curve].modulus)
    nf = native.get_native_field(field.modulus)
    p = field.modulus
    vals = [(i * i + 5) % p for i in range(128)]
    fwd = nf.ntt_ints(field, vals, field.root_of_unity(128))
    assert intt(field, fwd, backend="python") == vals


@pytest.mark.parametrize("curve", CURVE_NAMES)
def test_pointwise_kernels(curve):
    p = SCALAR_FIELDS[curve].modulus
    nf = native.get_native_field(p)
    xs = [(i * 7 + 1) % p for i in range(33)]
    ys = [(p - 1 - i * 3) % p for i in range(33)]
    assert nf.vmul_ints(xs, ys) == [(x * y) % p for x, y in zip(xs, ys)]
    g = 22222222222
    assert nf.vmul_powers_ints(xs, g) == \
        [(x * pow(g, i, p)) % p for i, x in enumerate(xs)]
    k = p - 12345
    assert nf.vscale_ints(xs, k) == [(x * k) % p for x in xs]


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_encode_decode_roundtrip_property(data):
    """Montgomery encode/decode round-trips for arbitrary residues on
    all three scalar moduli — including the boundary values 0, 1, p-1."""
    for curve in CURVE_NAMES:
        p = SCALAR_FIELDS[curve].modulus
        nf = native.get_native_field(p)
        vals = data.draw(st.lists(
            st.one_of(st.sampled_from([0, 1, p - 1]),
                      st.integers(min_value=0, max_value=p - 1)),
            min_size=1, max_size=16))
        arr = nf.encode(vals)
        assert nf.decode(arr) == vals


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_vmul_property(data):
    for curve in CURVE_NAMES:
        p = SCALAR_FIELDS[curve].modulus
        nf = native.get_native_field(p)
        n = data.draw(st.integers(min_value=1, max_value=12))
        xs = data.draw(st.lists(st.integers(0, p - 1),
                                min_size=n, max_size=n))
        ys = data.draw(st.lists(st.integers(0, p - 1),
                                min_size=n, max_size=n))
        assert nf.vmul_ints(xs, ys) == \
            [(x * y) % p for x, y in zip(xs, ys)]


def test_drain_kernel_events_clears():
    native.kernel_events()  # may be non-empty
    native.drain_kernel_events()
    assert native.kernel_events() == []
