"""Batched SoA curve kernels vs the scalar reference.

The numpy backend's vectorized Jacobian kernels and segmented bucket
reduction (:mod:`repro.backend.numpy_curve`) must be *bit-identical* to
the scalar group law on every curve — including every special case
(infinity, doubling, cancellation, mixed representatives) — and must
emit identical op-count totals. The one documented relaxation: bucket
accumulation may return any group-equal Jacobian representative, so
bucket contents are compared through ``from_jacobian``.

Count-parity fixtures use *offset* point chains (a random-multiple base
plus small steps): for such pairwise-independent points a collision
between a bucket's partial sum and an incoming point is a discrete-log
event, so the scalar fold and the reassociated tree take the same
doubling/cancellation branches.
"""

import random

import pytest

from repro.backend import get_backend
from repro.backend import numpy_curve
from repro.backend.native import native_available
from repro.backend.numpy_curve import (
    accumulate_buckets_segmented,
    batch_jadd,
    batch_jdouble,
    batch_jmixed_add,
    supports_group,
    _vec_field,
)
from repro.curves import CURVES
from repro.ff.opcount import OpCounter

numpy = pytest.importorskip("numpy")

CURVE_NAMES = ["ALT-BN128", "BLS12-381", "MNT4753"]

PY = get_backend("python")


def offset_chain(group, n, seed):
    """n affine points P0 + k*G with P0 a random 128-bit multiple of the
    generator — pairwise independent for count-parity purposes."""
    rng = random.Random(seed)
    gen = group.generator
    acc = group.to_jacobian(group.scalar_mul(rng.getrandbits(128), gen))
    jpts = []
    for _ in range(n):
        jpts.append(acc)
        acc = group.jmixed_add(acc, gen)
    return group.batch_normalize(jpts)


def jacobian_reps(group, pts, start=2):
    """Non-trivial Jacobian representatives (x k^2, y k^3, k)."""
    o = group.ops
    out = []
    for (x, y), k in zip(pts, range(start, start + len(pts))):
        kk = o.coerce(k)
        k2 = o.mul(kk, kk)
        out.append((o.mul(x, k2), o.mul(y, o.mul(k2, kk)), kk))
    return out


@pytest.mark.parametrize("name", CURVE_NAMES)
class TestVecFieldExact:
    """The int64 limb engine under the batch kernels is exact, including
    chained products (the top-limb fold keeps magnitudes bounded)."""

    def test_mul_chains(self, name):
        q = CURVES[name].fq.modulus
        vf = _vec_field(q)
        rng = random.Random(q % 10007)
        m = 129
        av = [rng.randrange(q) for _ in range(m)]
        bv = [rng.randrange(q) for _ in range(m)]
        a, b = vf.from_ints(av), vf.from_ints(bv)
        c = vf.mul(a, b)
        assert vf.to_ints(c) == [x * y % q for x, y in zip(av, bv)]
        d = vf.mul(c, c)
        e = vf.mul(vf.mul(d, d), vf.mul(d, a))
        assert vf.to_ints(e) == [
            pow(x * y, 6, q) * x % q for x, y in zip(av, bv)
        ]

    def test_add_sub_small_chains(self, name):
        q = CURVES[name].fq.modulus
        vf = _vec_field(q)
        rng = random.Random(q % 65537)
        av = [rng.randrange(q) for _ in range(64)]
        bv = [rng.randrange(q) for _ in range(64)]
        a, b = vf.from_ints(av), vf.from_ints(bv)
        r = vf.sub(vf.mul_small(vf.add(a, b), 8), vf.mul(a, vf.from_const(777)))
        assert vf.to_ints(r) == [
            ((x + y) * 8 - x * 777) % q for x, y in zip(av, bv)
        ]


@pytest.mark.parametrize("name", CURVE_NAMES)
class TestBatchKernelsBitIdentical:
    """batch_j* == the scalar loop, lane for lane, count for count.
    MNT4753 has a != 0 (the general doubling branch)."""

    def _run(self, group, batch_fn, scalar_fn, ps, qs=None):
        c_ref, c_vec = OpCounter(), OpCounter()
        group.counter = c_ref
        if qs is None:
            exp = [scalar_fn(p) for p in ps]
        else:
            exp = [scalar_fn(p, q) for p, q in zip(ps, qs)]
        group.counter = c_vec
        got = batch_fn(group, ps) if qs is None else batch_fn(group, ps, qs)
        group.counter = None
        assert got == exp
        assert c_ref._totals == c_vec._totals
        return got

    def test_jdouble(self, name):
        g1 = CURVES[name].g1
        assert supports_group(g1)
        pts = offset_chain(g1, 20, seed=1)
        lanes = jacobian_reps(g1, pts) + [(1, 1, 0)]
        self._run(g1, batch_jdouble, g1.jdouble, lanes)

    def test_jadd_special_lanes(self, name):
        g1 = CURVES[name].g1
        pts = offset_chain(g1, 20, seed=2)
        jz = jacobian_reps(g1, pts)
        jp = [g1.to_jacobian(p) for p in pts]
        inf = (1, 1, 0)
        # (inf, P), (P, inf), P + P across representatives, P + (-P)
        ps = jz + [inf, jz[0], jz[1], jz[2]]
        qs = jp + [jp[0], inf, (pts[1][0], pts[1][1], 1), g1.jneg(jp[2])]
        self._run(g1, batch_jadd, g1.jadd, ps, qs)

    def test_jmixed_special_lanes(self, name):
        g1 = CURVES[name].g1
        pts = offset_chain(g1, 20, seed=3)
        jz = jacobian_reps(g1, pts)
        inf = (1, 1, 0)
        ps = jz + [jz[0], inf, jz[1], jz[2]]
        qs = list(pts) + [None, pts[5], pts[1], g1.neg(pts[2])]
        self._run(g1, batch_jmixed_add, g1.jmixed_add, ps, qs)

    def test_backend_dispatch_matches_python(self, name, monkeypatch):
        """Through the public backend API (thresholds lowered so the
        vector path engages at test sizes)."""
        monkeypatch.setattr(numpy_curve, "MIN_VECTOR_LANES", 1)
        npb = get_backend("numpy")
        g1 = CURVES[name].g1
        pts = offset_chain(g1, 8, seed=4)
        jp = [g1.to_jacobian(p) for p in pts]
        assert npb.batch_jdouble(g1, jp) == PY.batch_jdouble(g1, jp)
        assert npb.batch_jadd(g1, jp, jp[::-1]) == PY.batch_jadd(
            g1, jp, jp[::-1]
        )
        assert npb.batch_jmixed_add(g1, jp, pts) == PY.batch_jmixed_add(
            g1, jp, pts
        )


@pytest.mark.skipif(not native_available(),
                    reason="no C compiler for the native kernels")
class TestSegmentedBuckets:
    """The sorted batch-affine tree returns group-equal buckets with
    identical op counts (pairwise-independent entries)."""

    def _entries(self, group, n, n_buckets, seed, adversarial=False):
        rng = random.Random(seed)
        pts = offset_chain(group, n, seed=seed + 1)
        entries = [(rng.randrange(n_buckets), p) for p in pts]
        if adversarial:
            entries[7] = (entries[6][0], group.neg(entries[6][1]))  # cancel
            entries[11] = entries[10]                               # dup
            entries[20] = (3, None)                                 # skip
        return entries

    def _compare(self, group, entries, n_buckets, init=None):
        o = group.ops
        inf = (o.one, o.one, o.zero)
        ref = list(init) if init else [inf] * n_buckets
        got = list(init) if init else [inf] * n_buckets
        c_ref, c_vec = OpCounter(), OpCounter()
        group.counter = c_ref
        PY.accumulate_buckets(group, ref, entries)
        group.counter = c_vec
        out = accumulate_buckets_segmented(group, got, entries)
        group.counter = None
        assert out is not None
        for i in range(n_buckets):
            assert group.from_jacobian(ref[i]) == group.from_jacobian(got[i])
        return c_ref, c_vec

    @pytest.mark.parametrize("name", CURVE_NAMES)
    def test_g1_equal_and_counts(self, name):
        g1 = CURVES[name].g1
        entries = self._entries(g1, 400, 32, seed=5)
        c_ref, c_vec = self._compare(g1, entries, 32)
        assert c_ref._totals == c_vec._totals

    @pytest.mark.parametrize("name", ["ALT-BN128", "BLS12-381"])
    def test_g2_equal_and_counts(self, name):
        g2 = CURVES[name].g2
        entries = self._entries(g2, 200, 16, seed=6)
        c_ref, c_vec = self._compare(g2, entries, 16)
        assert c_ref._totals == c_vec._totals

    def test_adversarial_entries_group_equal(self):
        """Cancellations, duplicate entries and None points: buckets
        with repeated x-coordinates are folded scalar-first, so both
        results and counts stay exact."""
        g1 = CURVES["BLS12-381"].g1
        entries = self._entries(g1, 300, 24, seed=7, adversarial=True)
        c_ref, c_vec = self._compare(g1, entries, 24)
        assert c_ref._totals == c_vec._totals

    def test_non_infinity_initial_buckets(self):
        g1 = CURVES["BLS12-381"].g1
        init = [g1.to_jacobian(p) for p in offset_chain(g1, 16, seed=9)]
        init[3] = (1, 1, 0)  # one empty bucket among occupied ones
        entries = self._entries(g1, 300, 16, seed=10)
        c_ref, c_vec = self._compare(g1, entries, 16, init=init)
        assert c_ref._totals == c_vec._totals

    def test_small_batches_return_none(self):
        g1 = CURVES["BLS12-381"].g1
        o = g1.ops
        pts = offset_chain(g1, 4, seed=11)
        entries = [(0, p) for p in pts]
        buckets = [(o.one, o.one, o.zero)]
        assert accumulate_buckets_segmented(g1, buckets, entries) is None

    def test_backend_falls_back_without_native(self, monkeypatch):
        """With the native kernels gone the numpy backend silently uses
        the scalar fold — same buckets, same counts."""
        monkeypatch.setattr(numpy_curve, "get_native_field",
                            lambda modulus: None)
        monkeypatch.setattr(numpy_curve, "SEGMENTED_MIN_ENTRIES", 1)
        npb = get_backend("numpy")
        g1 = CURVES["BLS12-381"].g1
        o = g1.ops
        entries = self._entries(g1, 96, 8, seed=12)
        inf = (o.one, o.one, o.zero)
        ref = [inf] * 8
        got = [inf] * 8
        c_ref, c_vec = OpCounter(), OpCounter()
        g1.counter = c_ref
        PY.accumulate_buckets(g1, ref, entries)
        g1.counter = c_vec
        npb.accumulate_buckets(g1, got, entries)
        g1.counter = None
        assert got == ref  # scalar fold: bit-identical, not just group-equal
        assert c_ref._totals == c_vec._totals


@pytest.mark.skipif(not native_available(),
                    reason="no C compiler for the native kernels")
def test_e2e_msm_count_parity():
    """A GZKP MSM run end-to-end on both backends: same result, same
    op-count totals (powers-of-tau-style independent bases)."""
    from repro.gpusim import V100
    from repro.msm.gzkp import GzkpMsm

    curve = CURVES["BLS12-381"]
    g1 = curve.g1
    rng = random.Random(13)
    n = 96
    pts = offset_chain(g1, n, seed=14)
    scalars = [rng.randrange(curve.fr.modulus) for _ in range(n)]
    results, totals = [], []
    for backend in ("python", "numpy"):
        msm = GzkpMsm(g1, curve.fr.bits, V100, window=4, interval=8,
                      backend=backend)
        counter = OpCounter()
        results.append(msm.compute(scalars, list(pts), counter=counter))
        totals.append(dict(counter._totals))
    assert results[0] == results[1]
    assert totals[0] == totals[1]
