"""Tests for the batch/group geometry (Figure 4) and the GPU NTT models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NttError
from repro.ff import ALT_BN128_R, BLS12_381_R, MNT4753_R, OpCounter
from repro.gpusim import GTX1080TI, V100
from repro.ntt import (
    BaselineGpuNtt,
    BaselineNttVariant,
    CpuNtt,
    GzkpNtt,
    block_chunks,
    group_elements,
    ntt,
    plan_batches,
    run_batched_ntt,
)
from repro.gpusim.device import XEON_5117

F = ALT_BN128_R


class TestGroupGeometry:
    def test_figure4_batch0(self):
        # Batch 0 (s=0, B=2), N=16: group 0 is contiguous 0..3.
        assert group_elements(4, 0, 2, 0) == [0, 1, 2, 3]
        assert group_elements(4, 0, 2, 3) == [12, 13, 14, 15]

    def test_figure4_batch1(self):
        # Batch 1 (s=2, B=2), N=16: "the first group will be working on
        # elements 0, 4, 8, and 12" (§3).
        assert group_elements(4, 2, 2, 0) == [0, 4, 8, 12]
        assert group_elements(4, 2, 2, 1) == [1, 5, 9, 13]

    def test_groups_partition_all_elements(self):
        log_n, s, b = 6, 2, 3
        seen = set()
        for g in range(1 << (log_n - b)):
            elems = group_elements(log_n, s, b, g)
            assert len(elems) == 1 << b
            seen.update(elems)
        assert seen == set(range(1 << log_n))

    def test_figure4_block_chunks(self):
        """G consecutive groups at stride 2^s form 2^B contiguous
        length-G chunks — the coalescing property the internal shuffle
        relies on (here N=32, s=2, B=2, G=2)."""
        chunks = block_chunks(5, 2, 2, first_group=0, n_groups=2)
        assert chunks == [(0, 2), (4, 2), (8, 2), (12, 2)]

    def test_block_chunks_merge_when_groups_fill_stride(self):
        """With G = 2^s the runs become adjacent and merge into fully
        contiguous coverage (the best case)."""
        chunks = block_chunks(4, 2, 2, first_group=0, n_groups=4)
        assert chunks == [(0, 16)]

    def test_block_chunks_batch0(self):
        # Contiguous groups merge into one chunk in batch 0.
        chunks = block_chunks(4, 0, 2, first_group=0, n_groups=4)
        assert chunks == [(0, 16)]

    def test_out_of_range_rejected(self):
        with pytest.raises(NttError):
            group_elements(4, 3, 2, 0)
        with pytest.raises(NttError):
            group_elements(4, 0, 2, 4)


class TestBatchPlan:
    def test_tiling(self):
        plan = plan_batches(20, 8)
        assert [(b.shift, b.width) for b in plan.batches] == [
            (0, 8), (8, 8), (16, 4),
        ]

    def test_single_batch(self):
        plan = plan_batches(5, 8)
        assert len(plan.batches) == 1
        assert plan.batches[0].width == 5

    def test_bad_width(self):
        with pytest.raises(NttError):
            plan_batches(10, 0)


class TestBatchedExecutor:
    @pytest.mark.parametrize("log_n,width", [(4, 2), (6, 3), (8, 8), (7, 2),
                                             (10, 4), (9, 5)])
    def test_matches_reference(self, log_n, width):
        rng = random.Random(log_n * 10 + width)
        v = [rng.randrange(F.modulus) for _ in range(1 << log_n)]
        plan = plan_batches(log_n, width)
        assert run_batched_ntt(F, v, plan) == ntt(F, v)

    def test_wrong_size_rejected(self):
        with pytest.raises(NttError):
            run_batched_ntt(F, [1, 2, 3, 4], plan_batches(3, 2))

    @settings(max_examples=10, deadline=None)
    @given(width=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=99))
    def test_any_width_property(self, width, seed):
        rng = random.Random(seed)
        v = [rng.randrange(F.modulus) for _ in range(256)]
        assert run_batched_ntt(F, v, plan_batches(8, width)) == ntt(F, v)


class TestGzkpNtt:
    def test_functional_all_fields(self):
        for field in (ALT_BN128_R, BLS12_381_R, MNT4753_R):
            rng = random.Random(1)
            v = [rng.randrange(field.modulus) for _ in range(128)]
            engine = GzkpNtt(field, V100)
            assert engine.compute(v) == ntt(field, v)
            assert engine.compute_inverse(engine.compute(v)) == v

    def test_config_respects_shared_memory(self):
        for field in (ALT_BN128_R, MNT4753_R):
            cfg = GzkpNtt(field, V100).configure(1 << 20)
            staged = cfg.groups_per_block * (1 << cfg.batch_width)
            assert staged * field.limbs64 * 8 <= V100.shared_mem_per_sm // 2
            assert cfg.threads_per_block <= V100.max_threads_per_block

    def test_config_keeps_min_groups(self):
        cfg = GzkpNtt(ALT_BN128_R, V100).configure(1 << 22)
        assert cfg.groups_per_block >= GzkpNtt.MIN_GROUPS

    def test_measured_counts_match_plan(self):
        """The analytic plan's butterfly count equals the instrumented
        functional count — the key counts-are-exact validation."""
        n = 1 << 10
        engine = GzkpNtt(F, V100)
        counter = OpCounter()
        rng = random.Random(2)
        engine.compute([rng.randrange(F.modulus) for _ in range(n)],
                       counter=counter)
        plan = engine.plan(n)
        assert counter.total("fr_mul") == plan.gpu_muls[(F.bits, "dfp")]
        assert counter.total("fr_add") == plan.gpu_adds[F.bits]

    def test_latency_scales_roughly_linearly(self):
        engine = GzkpNtt(BLS12_381_R, V100)
        t20 = engine.estimate_seconds(1 << 20)
        t24 = engine.estimate_seconds(1 << 24)
        # N log N growth: 16x data -> 19.2x work; allow overheads slack.
        assert 14 < t24 / t20 < 25

    def test_plan_has_no_strided_traffic(self):
        trace = GzkpNtt(F, V100).plan(1 << 20)
        assert trace.coalescing_efficiency() == 1.0


class TestBaselineNtt:
    def test_functional(self):
        rng = random.Random(3)
        v = [rng.randrange(F.modulus) for _ in range(512)]
        assert BaselineGpuNtt(F, V100).compute(v) == ntt(F, v)

    def test_shuffle_traffic_present(self):
        trace = BaselineGpuNtt(BLS12_381_R, V100).plan(1 << 20)
        assert trace.coalescing_efficiency() < 1.0

    def test_no_shuffle_variant_is_strided(self):
        variant = BaselineNttVariant(skip_global_shuffle=True,
                                     name="GZKP-no-GM-shuffle")
        t = BaselineGpuNtt(BLS12_381_R, V100, variant).plan(1 << 20)
        base = BaselineGpuNtt(BLS12_381_R, V100).plan(1 << 20)
        # Dropping the shuffle removes bytes but worsens coalescing.
        assert t.global_bytes < base.global_bytes

    def test_lib_variant_faster(self):
        n = 1 << 22
        bg = BaselineGpuNtt(BLS12_381_R, V100)
        lib = BaselineGpuNtt(
            BLS12_381_R, V100, BaselineNttVariant(use_dfp_library=True,
                                                  name="BG w. lib")
        )
        speedup = bg.estimate_seconds(n) / lib.estimate_seconds(n)
        # Figure 8: the library alone gives ~1.6x at 2^22. The model
        # lands lower because the shuffle stage (which the library
        # cannot speed up) carries real weight — see the calibration
        # note in gpusim/cost.py.
        assert 1.15 < speedup < 2.0

    def test_degenerate_last_batch_jump(self):
        """Figure 8 / Table 5: scale 2^18 has a 2-iteration last batch
        with 2^16 blocks of 2 threads — latency jumps far beyond the
        N log N trend from 2^16."""
        engine = BaselineGpuNtt(BLS12_381_R, V100)
        t16 = engine.estimate_seconds(1 << 16)
        t18 = engine.estimate_seconds(1 << 18)
        assert t18 / t16 > 8  # work only grows 4.5x; overhead dominates

    def test_shuffle_fraction_substantial(self):
        """§2.2 quotes shuffles at 42%-81% of per-batch time; that prose
        range is inconsistent with Figure 8's compute-side 1.6x library
        gain (see the calibration note in gpusim/cost.py), so the model
        is calibrated to the quantitative data and lands at 25%-35% —
        still a substantial, stride-growing share."""
        engine = BaselineGpuNtt(BLS12_381_R, V100)
        for lg in (22, 24):
            rows = engine.batch_breakdown(1 << lg)
            full_batches = [r for r in rows if r["shift"] > 0
                            and r["width"] == 8]
            assert full_batches, "expected shuffled full batches"
            for row in full_batches:
                assert 0.15 < row["shuffle_fraction"] < 0.85

    def test_shuffle_fraction_grows_with_stride(self):
        engine = BaselineGpuNtt(BLS12_381_R, V100)
        rows = [r for r in engine.batch_breakdown(1 << 24) if r["shift"] > 0]
        assert rows[-1]["shuffle_fraction"] > rows[0]["shuffle_fraction"]

    def test_gzkp_beats_baseline_everywhere(self):
        gz = GzkpNtt(BLS12_381_R, V100)
        bg = BaselineGpuNtt(BLS12_381_R, V100)
        for log_n in range(14, 27, 2):
            n = 1 << log_n
            assert gz.estimate_seconds(n) < bg.estimate_seconds(n)

    def test_1080ti_slower_than_v100(self):
        gz_v = GzkpNtt(BLS12_381_R, V100)
        gz_p = GzkpNtt(BLS12_381_R, GTX1080TI)
        n = 1 << 22
        assert gz_p.estimate_seconds(n) > 2 * gz_v.estimate_seconds(n)


class TestCpuNtt:
    def test_functional(self):
        rng = random.Random(4)
        v = [rng.randrange(F.modulus) for _ in range(64)]
        assert CpuNtt(F, XEON_5117).compute(v) == ntt(F, v)
        assert CpuNtt(F, XEON_5117).compute_inverse(ntt(F, v)) == v

    def test_superlinear_at_small_scales(self):
        """Table 5: libsnark's 2^14 -> 2^16 latency only doubles (fixed
        dispatch overhead dominates), unlike the 4.57x work ratio."""
        engine = CpuNtt(MNT4753_R, XEON_5117)
        t14 = engine.estimate_seconds(1 << 14)
        t16 = engine.estimate_seconds(1 << 16)
        assert t16 / t14 < 3.0

    def test_gpu_advantage_is_orders_of_magnitude(self):
        """Table 5's headline: GZKP's 753-bit NTT is 218-697x faster
        than the CPU baseline."""
        cpu = CpuNtt(MNT4753_R, XEON_5117)
        gpu = GzkpNtt(MNT4753_R, V100)
        for log_n in (14, 20, 26):
            n = 1 << log_n
            speedup = cpu.estimate_seconds(n) / gpu.estimate_seconds(n)
            assert 100 < speedup < 1500
