"""Tests for the bench harness itself: regenerator structure, report
rendering, the CLI, and EXPERIMENTS.md generation."""

import pytest

from repro.bench import (
    figure8_ntt_breakdown,
    figure9_msm_memory,
    fmt_cell,
    paper_data,
    render_figure_rows,
    render_scale_table,
    render_workload_table,
    table2_zksnark,
    table5_ntt_v100,
    zcash_like_scalars,
)
from repro.bench.__main__ import main as bench_cli
from repro.bench.experiments_md import generate_experiments_md


class TestPaperData:
    def test_table_scales_consistent(self):
        assert set(paper_data.TABLE5_V100) == {14, 16, 18, 20, 22, 24, 26}
        assert set(paper_data.TABLE7_V100) == {14, 16, 18, 20, 22, 24, 26}
        assert set(paper_data.TABLE6_1080TI) == {14, 16, 18, 20, 22, 24}

    def test_mina_oom_cells_marked(self):
        assert paper_data.TABLE7_V100[24][0] is None
        assert paper_data.TABLE7_V100[22][0] is not None

    def test_workload_names_match_registry(self):
        from repro.circuits import ZCASH_WORKLOADS, ZKSNARK_WORKLOADS

        assert set(paper_data.TABLE2) == set(ZKSNARK_WORKLOADS)
        assert set(paper_data.TABLE3) == set(ZCASH_WORKLOADS)
        assert set(paper_data.TABLE4) == set(ZCASH_WORKLOADS)


class TestRegenerators:
    def test_table2_structure(self):
        rows = table2_zksnark()
        assert len(rows) == 6
        for row in rows:
            assert set(row) == {"workload", "vector_size", "paper", "model"}
            assert row["model"]["gz_msm"] > 0

    def test_table5_structure(self):
        rows = table5_ntt_v100()
        assert [r["log_scale"] for r in rows] == [14, 16, 18, 20, 22, 24, 26]

    def test_figure8_structure(self):
        rows = figure8_ntt_breakdown(log_scales=(18, 22))
        assert len(rows) == 2
        assert set(rows[0]["ms"]) == {
            "BG", "BG w. lib", "GZKP-no-GM-shuffle", "GZKP"
        }

    def test_figure9_oom_none(self):
        rows = figure9_msm_memory(log_scales=[24])
        assert rows[0]["gib"]["MINA"] is None


class TestScalarGenerator:
    def test_deterministic(self):
        assert zcash_like_scalars(100) == zcash_like_scalars(100)
        assert zcash_like_scalars(100, seed=1) != zcash_like_scalars(
            100, seed=2
        )

    def test_profile(self):
        scalars = zcash_like_scalars(4000)
        zeros = sum(1 for s in scalars if s == 0) / len(scalars)
        ones = sum(1 for s in scalars if s == 1) / len(scalars)
        assert 0.25 < zeros < 0.45
        assert 0.15 < ones < 0.35


class TestRendering:
    def test_fmt_cell(self):
        assert fmt_cell(None) == "OOM"
        assert fmt_cell(0) == "0"
        assert fmt_cell(123.4) == "123"
        assert fmt_cell(1.234) == "1.23"
        assert fmt_cell(0.01234) == "0.012"

    def test_workload_table_renders(self):
        text = render_workload_table(
            "T", table2_zksnark(), ["gz_poly", "gz_msm"]
        )
        assert "AES" in text and "Auction" in text
        assert "paper/model" in text

    def test_scale_table_renders(self):
        text = render_scale_table("T", table5_ntt_v100(), ["gz_256"], "ms")
        assert "2^14" in text and "2^26" in text

    def test_figure_rows_render(self):
        text = render_figure_rows("F", figure8_ntt_breakdown(
            log_scales=(18,)), "ms", "ms")
        assert "GZKP" in text


class TestCli:
    def test_single_experiment(self, capsys):
        assert bench_cli(["figure8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "GZKP" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            bench_cli(["tableX"])

    def test_write_experiments_md(self, tmp_path, capsys):
        target = tmp_path / "EXPERIMENTS.md"
        assert bench_cli(["figure9", "--write", str(target)]) == 0
        content = target.read_text()
        assert "Table 2" in content
        assert "Figure 10" in content
        capsys.readouterr()


class TestExperimentsMd:
    @pytest.fixture(scope="class")
    def content(self):
        return generate_experiments_md()

    def test_all_sections_present(self, content):
        for section in ("Table 2", "Table 3", "Table 4", "Table 5",
                        "Table 6", "Table 7", "Table 8", "Figure 6",
                        "Figure 8", "Figure 9", "Figure 10"):
            assert section in content

    def test_paper_model_pairs(self, content):
        # Table 7's MINA OOM cells render as paper-OOM / model-OOM.
        assert "OOM / OOM" in content

    def test_claims_quantified(self, content):
        assert "consolidation" in content
        assert "2.85" in content  # Figure 6's spread
