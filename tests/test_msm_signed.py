"""Tests for the signed-digit extension (bucket halving)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import bn128_g1
from repro.errors import MsmError
from repro.msm import naive_msm
from repro.msm.signed import SignedConsolidatedMsm, signed_digits

G = bn128_g1
L = 254


class TestSignedDigits:
    @settings(max_examples=60, deadline=None)
    @given(s=st.integers(min_value=0, max_value=(1 << 254) - 1),
           k=st.integers(min_value=2, max_value=20))
    def test_reconstruction_property(self, s, k):
        digits = signed_digits(s, 254, k)
        assert sum(d << (t * k) for t, d in enumerate(digits)) == s

    @settings(max_examples=60, deadline=None)
    @given(s=st.integers(min_value=0, max_value=(1 << 254) - 1),
           k=st.integers(min_value=2, max_value=20))
    def test_digit_bound_property(self, s, k):
        half = 1 << (k - 1)
        for d in signed_digits(s, 254, k):
            assert -half < d <= half

    def test_zero(self):
        assert all(d == 0 for d in signed_digits(0, 64, 4))

    def test_carry_chain(self):
        # All-max digits force carries all the way up.
        s = (1 << 64) - 1
        digits = signed_digits(s, 64, 4)
        assert sum(d << (4 * t) for t, d in enumerate(digits)) == s
        assert digits[-1] == 1  # the final carry window

    def test_negative_scalar_rejected(self):
        with pytest.raises(MsmError):
            signed_digits(-1, 64, 4)

    def test_bad_window_rejected(self):
        with pytest.raises(MsmError):
            signed_digits(5, 64, 0)


class TestSignedMsm:
    def _inputs(self, n, seed):
        rng = random.Random(seed)
        return ([rng.randrange(G.order) for _ in range(n)],
                [G.random_point(rng) for _ in range(n)])

    @pytest.mark.parametrize("k", [3, 5, 8])
    def test_matches_naive(self, k):
        scalars, points = self._inputs(16, seed=k)
        engine = SignedConsolidatedMsm(G, L, window=k)
        assert engine.compute(scalars, points) == naive_msm(G, scalars, points)

    def test_half_the_buckets(self):
        assert SignedConsolidatedMsm(G, L, window=8).n_buckets == 128

    def test_sparse_and_edges(self):
        scalars = [0, 1, G.order - 1, 1, 0]
        rng = random.Random(7)
        points = [G.random_point(rng) for _ in range(5)]
        engine = SignedConsolidatedMsm(G, L, window=4)
        assert engine.compute(scalars, points) == naive_msm(G, scalars, points)

    def test_empty(self):
        assert SignedConsolidatedMsm(G, L, window=4).compute([], []) is None

    def test_window_too_small(self):
        with pytest.raises(MsmError):
            SignedConsolidatedMsm(G, L, window=1)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_random_property(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(1, 10)
        scalars = [rng.randrange(G.order) for _ in range(n)]
        points = [G.random_point(rng) for _ in range(n)]
        engine = SignedConsolidatedMsm(G, L, window=rng.randrange(3, 9))
        assert engine.compute(scalars, points) == naive_msm(G, scalars, points)
